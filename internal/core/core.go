// Package core implements the range check optimization algorithm of
// Kolte & Wolfe (PLDI 1995) — the paper's primary contribution.
//
// The optimizer runs the paper's five steps per function:
//
//  1. Build the check implication graph (families + cross-family edges).
//  2. Compute safe insertion points (anticipatability).
//  3. Insert checks per the selected placement scheme: NI (none), CS
//     (check strengthening), SE (safe-earliest), LNI (latest-not-
//     isolated), LI (preheader insertion of invariant checks), LLS
//     (preheader insertion with loop-limit substitution), ALL (LLS+SE).
//  4. Compute availability and eliminate redundant checks.
//  5. Evaluate compile-time checks: true ⇒ delete, false ⇒ TRAP.
//
// Checks are optimized either as program-expression checks (PRX) or as
// induction-expression checks (INX, §2.3): INX mode rewrites each in-loop
// check into the induction expression of its subscript over the loop's
// basic variable h, materializing h in the loop.
package core

import (
	"fmt"
	"sort"

	"nascent/internal/chaos"
	"nascent/internal/dataflow"
	"nascent/internal/dom"
	"nascent/internal/guard"
	"nascent/internal/induction"
	"nascent/internal/ir"
	"nascent/internal/linform"
	"nascent/internal/loops"
	"nascent/internal/rangecheck"
	"nascent/internal/ssa"
)

// Scheme selects the check placement strategy (paper §3.3, §4.2).
type Scheme int

// Placement schemes, in the paper's Table 2 order.
const (
	// NI: redundancy elimination without any insertion of checks.
	NI Scheme = iota
	// CS: check strengthening only.
	CS
	// LNI: latest-not-isolated placement.
	LNI
	// SE: safe-earliest placement.
	SE
	// LI: preheader insertion of only loop-invariant checks.
	LI
	// LLS: preheader insertion with loop-limit substitution of linear
	// checks.
	LLS
	// ALL: loop-limit substitution followed by safe-earliest placement.
	ALL
	// MCM: Markstein-Cocke-Markstein restricted preheader insertion —
	// the comparison algorithm the paper's §5 proposes implementing:
	// hoist only simple checks from articulation nodes of loop bodies.
	MCM
)

var schemeNames = [...]string{NI: "NI", CS: "CS", LNI: "LNI", SE: "SE", LI: "LI", LLS: "LLS", ALL: "ALL", MCM: "MCM"}

func (s Scheme) String() string { return schemeNames[s] }

// Schemes lists the paper's placement schemes in Table 2 order (MCM, the
// §5 comparison algorithm, is not part of Table 2).
var Schemes = []Scheme{NI, CS, LNI, SE, LI, LLS, ALL}

// CheckKind selects how checks are constructed (paper §2.3, §4.3).
type CheckKind int

// Check kinds.
const (
	// PRX: checks over program expressions.
	PRX CheckKind = iota
	// INX: checks over induction expressions.
	INX
)

func (k CheckKind) String() string {
	if k == INX {
		return "INX"
	}
	return "PRX"
}

// Options configure one optimization run.
type Options struct {
	Scheme Scheme
	Kind   CheckKind
	Mode   rangecheck.Mode
	// Rotate converts while loops to guarded repeat loops before
	// optimization, enabling safe-earliest hoisting out of them
	// (paper §3.3's loop-rotation remark).
	Rotate bool
}

// Result reports what the optimizer did.
type Result struct {
	Options Options
	// ChecksBefore/After are static check counts over the whole program.
	ChecksBefore int
	ChecksAfter  int
	// Inserted counts checks added by the placement scheme (including
	// hoisted cond-checks).
	Inserted int
	// EliminatedAvail counts checks removed as available-redundant.
	EliminatedAvail int
	// EliminatedCover counts loop-body checks covered by hoisted
	// preheader checks.
	EliminatedCover int
	// EliminatedConst counts compile-time-true checks removed (step 5).
	EliminatedConst int
	// TrapsInserted counts compile-time-false checks replaced by TRAP.
	TrapsInserted int
	// Diagnostics holds messages for compile-time violations and
	// degradation events.
	Diagnostics []string
	// Degraded names the functions whose optimization failed and whose
	// naive (fully checked) bodies were restored. Counters of degraded
	// functions are excluded from this Result, so the arithmetic
	// identity ChecksAfter = ChecksBefore + Inserted − Eliminated* −
	// TrapsInserted holds with or without degradation.
	Degraded []string
}

// merge folds a successfully optimized function's counters into r.
func (r *Result) merge(o *Result) {
	r.Inserted += o.Inserted
	r.EliminatedAvail += o.EliminatedAvail
	r.EliminatedCover += o.EliminatedCover
	r.EliminatedConst += o.EliminatedConst
	r.TrapsInserted += o.TrapsInserted
	r.Diagnostics = append(r.Diagnostics, o.Diagnostics...)
}

// Optimize runs the range check optimizer over every function of p,
// mutating p in place.
//
// Optimize never panics and degrades gracefully: each function is
// snapshotted before transformation, and when a pass fails on one
// function — returned error or contained panic — that function's naive
// body is restored, the failure is recorded in Result.Degraded and
// Result.Diagnostics, and the remaining functions are still optimized.
// An error is returned only when the whole program is unusable (the
// final IR fails verification even after restoration).
func Optimize(p *ir.Program, opts Options) (res *Result, err error) {
	defer guard.Recover("optimize", "", &err)
	res = &Result{Options: opts, ChecksBefore: p.CountChecks()}
	for _, f := range p.Funcs {
		snap := f.Snapshot()
		fres := &Result{Options: opts}
		if ferr := optimizeFuncSafe(f, opts, fres); ferr != nil {
			f.RestoreFrom(snap)
			res.Degraded = append(res.Degraded, f.Name)
			res.Diagnostics = append(res.Diagnostics, fmt.Sprintf(
				"%s: optimizer failed (%v); naive checks kept for this function", f.Name, ferr))
			continue
		}
		res.merge(fres)
	}
	res.ChecksAfter = p.CountChecks()
	if verr := p.Verify(); verr != nil {
		return nil, fmt.Errorf("core: %w", verr)
	}
	return res, nil
}

// optimizeFuncSafe runs optimizeFunc with panic containment, so an
// internal invariant violation in one function surfaces as a
// stage-tagged error instead of killing the compile.
func optimizeFuncSafe(f *ir.Func, opts Options, res *Result) (err error) {
	defer guard.Recover("optimize", f.Name, &err)
	return optimizeFunc(f, opts, res)
}

// funcCtx bundles the per-function analyses.
type funcCtx struct {
	fn     *ir.Func
	opts   Options
	dom    *dom.Tree
	pdom   *dom.PostTree
	forest *loops.Forest
	ssa    *ssa.Info
	ind    *induction.Analysis
	res    *Result
}

// failFunc, when set by tests (see export_test.go), makes optimizeFunc
// panic on the named function to exercise containment and degradation.
var failFunc string

func optimizeFunc(f *ir.Func, opts Options, res *Result) error {
	if failFunc != "" && f.Name == failFunc {
		panic("core: injected test failure in " + f.Name)
	}
	if chaos.Active() && chaos.Fire(chaos.SiteOptPanic, f.Name) {
		// Contained by optimizeFuncSafe; Optimize restores the naive
		// body and records the function in Result.Degraded.
		panic(chaos.PanicValue(chaos.SiteOptPanic, f.Name))
	}
	if opts.Rotate {
		rotateWhileLoops(f)
	}
	f.SplitCriticalEdges()
	tree := dom.Compute(f)
	forest := loops.Analyze(f, tree)
	// Loop analysis may create preheaders; recompute dominators so SSA
	// and the placement schemes see the final topology. The CFG topology
	// is frozen from here on (schemes only insert/remove statements).
	tree = dom.Compute(f)
	info := ssa.Build(f, tree)
	ind := induction.Analyze(f, forest, info)

	c := &funcCtx{fn: f, opts: opts, dom: tree, pdom: dom.ComputePost(f), forest: forest, ssa: info, ind: ind, res: res}

	if opts.Kind == INX {
		c.rewriteINX()
	}

	switch opts.Scheme {
	case NI:
		// no insertion
	case CS:
		c.strengthen()
	case SE:
		c.placeEarliest()
	case LNI:
		c.placeLatest()
	case LI:
		c.preheaderInsert(false)
	case LLS:
		c.preheaderInsert(true)
	case ALL:
		c.preheaderInsert(true)
		c.placeEarliest()
	case MCM:
		c.mcmHoist()
	}

	c.diagnoseCompileTime()
	c.eliminate()
	c.compileTime()
	if chaos.Active() && chaos.Fire(chaos.SiteOptMalformed, f.Name) {
		// Malformed-IR fault: drop the entry block's terminator. The
		// verifier below must flag it, which degrades the function to
		// its naive snapshot — the malformed body must never ship.
		f.Entry().Term = nil
	}
	return f.Verify()
}

// diagnoseCompileTime reports every compile-time-false check before
// elimination runs (availability may legitimately absorb duplicates of a
// failing constant check, but the paper reports all violations to the
// programmer).
func (c *funcCtx) diagnoseCompileTime() {
	c.fn.ForEachStmt(func(_ *ir.Block, _ int, s ir.Stmt) {
		chk, ok := s.(*ir.CheckStmt)
		if !ok || chk.Guard != nil || len(chk.Terms) != 0 || chk.Const >= 0 {
			return
		}
		c.res.Diagnostics = append(c.res.Diagnostics,
			fmt.Sprintf("%s: compile-time range violation at %s: %s [%s]",
				c.fn.Name, chk.SrcPos, chk, chk.Note))
	})
}

// ---------------------------------------------------------------------------
// Step 4: availability-based elimination

func (c *funcCtx) eliminate() {
	env := dataflow.NewEnv(c.fn, c.opts.Mode)
	availIn, _ := env.Availability()
	for _, b := range c.fn.ReversePostorder() {
		st := availIn[b].Clone()
		kept := b.Stmts[:0]
		for _, s := range b.Stmts {
			if chk, ok := s.(*ir.CheckStmt); ok && chk.Guard == nil {
				f := env.FamilyOf(chk)
				if st[f.Index] != rangecheck.AllChecks && st[f.Index] <= chk.Const {
					c.res.EliminatedAvail++
					continue // redundant: a check as strong is available
				}
			}
			env.TransferForward(st, s)
			kept = append(kept, s)
		}
		b.Stmts = kept
	}
}

// ---------------------------------------------------------------------------
// Step 5: compile-time checks

func (c *funcCtx) compileTime() {
	for _, b := range c.fn.Blocks {
		for i := 0; i < len(b.Stmts); i++ {
			chk, ok := b.Stmts[i].(*ir.CheckStmt)
			if !ok || len(chk.Terms) != 0 {
				continue
			}
			if chk.Const >= 0 {
				b.RemoveStmt(i)
				i--
				c.res.EliminatedConst++
				continue
			}
			if chk.Guard == nil {
				// Already reported by diagnoseCompileTime.
				b.ReplaceStmt(i, &ir.TrapStmt{Note: chk.Note, SrcPos: chk.SrcPos})
				c.res.TrapsInserted++
			}
			// A guarded compile-time-false check stays: it traps at run
			// time only when its guard (loop entry) is true.
		}
	}
}

// ---------------------------------------------------------------------------
// CS: check strengthening (Gupta), paper §3.3

func (c *funcCtx) strengthen() {
	env := dataflow.NewEnv(c.fn, c.opts.Mode)
	_, antOut := env.Anticipatability()
	for _, b := range c.fn.ReversePostorder() {
		st := antOut[b].Clone()
		for i := len(b.Stmts) - 1; i >= 0; i-- {
			s := b.Stmts[i]
			if chk, ok := s.(*ir.CheckStmt); ok && chk.Guard == nil {
				// st currently holds anticipatability just AFTER this
				// check: the strongest check that will be performed later
				// anyway. Strengthen if it is stronger than this one.
				f := env.FamilyOf(chk)
				if v := st[f.Index]; v != rangecheck.None && v != rangecheck.AllChecks && v < chk.Const {
					chk.Const = v
				}
			}
			env.TransferBackward(st, s)
		}
	}
}

// ---------------------------------------------------------------------------
// SE: safe-earliest placement (Knoop-Rüthing-Steffen adapted to checks)

// placement is one insertion point: before statement at of block (at may
// equal len(block.Stmts) for end-of-block insertion).
type placement struct {
	block *ir.Block
	at    int
	value int64
	fam   *rangecheck.Family
}

// antPoints returns the anticipatability state before each statement
// position of b: states[i] holds just before b.Stmts[i], and
// states[len(Stmts)] equals antOut.
func antPoints(env *dataflow.Env, b *ir.Block, antOut dataflow.State) []dataflow.State {
	states := make([]dataflow.State, len(b.Stmts)+1)
	st := antOut.Clone()
	states[len(b.Stmts)] = st.Clone()
	for i := len(b.Stmts) - 1; i >= 0; i-- {
		env.TransferBackward(st, b.Stmts[i])
		states[i] = st.Clone()
	}
	return states
}

// kills reports whether s kills family fam.
func kills(env *dataflow.Env, s ir.Stmt, fam *rangecheck.Family) bool {
	switch s := s.(type) {
	case *ir.AssignStmt:
		return fam.KillVars[s.Dst.ID]
	case *ir.StoreStmt:
		return fam.KillArrays[s.Arr.ID]
	case *ir.CallStmt:
		return fam.KilledByCall
	}
	return false
}

// earliestPlacements computes the safe-earliest insertion points (KRS
// adapted to the check lattice, at statement granularity): a check
// (fam, v) is placed where it first becomes anticipatable — at function
// entry, after a kill, or on an edge from a block where it is neither
// anticipatable nor available.
func (c *funcCtx) earliestPlacements(env *dataflow.Env) []placement {
	_, antOut := env.Anticipatability()
	_, availOut := env.Availability()

	var out []placement
	entry := c.fn.Entry()
	for _, b := range c.fn.ReversePostorder() {
		pts := antPoints(env, b, antOut[b])
		for idx, fam := range env.Reg.Families {
			// Block entry placement: anticipatable at entry of b and not
			// covered from every predecessor.
			v := pts[0][idx]
			if v != rangecheck.None && v != rangecheck.AllChecks {
				earliest := b == entry
				for _, p := range b.Preds {
					down := antOut[p][idx] != rangecheck.AllChecks && antOut[p][idx] <= v
					up := availOut[p][idx] != rangecheck.AllChecks && availOut[p][idx] <= v
					if !down && !up {
						earliest = true
					}
				}
				if earliest {
					out = append(out, placement{block: b, at: 0, value: v, fam: fam})
				}
			}
			// Intra-block: immediately after each kill where the family
			// becomes anticipatable again.
			for i, s := range b.Stmts {
				if !kills(env, s, fam) {
					continue
				}
				w := pts[i+1][idx]
				if w != rangecheck.None && w != rangecheck.AllChecks {
					out = append(out, placement{block: b, at: i + 1, value: w, fam: fam})
				}
			}
		}
	}
	return out
}

func (c *funcCtx) insertCheckAt(b *ir.Block, at int, fam *rangecheck.Family, v int64, note string) {
	chk := &ir.CheckStmt{
		Terms: cloneTerms(fam.Terms),
		Const: v,
		Note:  note,
	}
	b.InsertStmts(at, chk)
	c.res.Inserted++
}

func (c *funcCtx) placeEarliest() {
	env := dataflow.NewEnv(c.fn, c.opts.Mode)
	placements := c.earliestPlacements(env)
	// Insert back-to-front per block so earlier positions stay valid.
	sort.SliceStable(placements, func(i, j int) bool {
		if placements[i].block != placements[j].block {
			return placements[i].block.ID < placements[j].block.ID
		}
		return placements[i].at > placements[j].at
	})
	for _, pl := range placements {
		c.insertCheckAt(pl.block, pl.at, pl.fam, pl.value, "SE placement")
	}
}

// ---------------------------------------------------------------------------
// LNI: latest-not-isolated placement

// placeLatest computes the earliest placements, then delays each one as
// far down the CFG as possible (the LCM "delay" system): a placement
// moves forward until it meets an occurrence it covers (where it becomes
// a strengthening of that occurrence — an insertion immediately before
// an occurrence is "isolated" and folded into it), falls off a path that
// never uses it (no insertion there), or reaches a merge some other path
// of which cannot delay (insert on the incoming edge).
func (c *funcCtx) placeLatest() {
	env := dataflow.NewEnv(c.fn, c.opts.Mode)
	placements := c.earliestPlacements(env)

	type key struct {
		idx int
		v   int64
	}
	grouped := make(map[key][]placement)
	var orderKeys []key
	for _, pl := range placements {
		k := key{pl.fam.Index, pl.value}
		if _, seen := grouped[k]; !seen {
			orderKeys = append(orderKeys, k)
		}
		grouped[k] = append(grouped[k], pl)
	}
	sort.Slice(orderKeys, func(i, j int) bool {
		if orderKeys[i].idx != orderKeys[j].idx {
			return orderKeys[i].idx < orderKeys[j].idx
		}
		return orderKeys[i].v < orderKeys[j].v
	})

	order := c.fn.ReversePostorder()
	for _, k := range orderKeys {
		fam := env.Reg.Families[k.idx]
		v := k.v

		// strengthenFirstOcc delays a placement through the statements of
		// b starting at position `at`. Returns true if the placement was
		// absorbed (by an occurrence or a kill); false if it delayed past
		// the block end.
		strengthenFirstOcc := func(b *ir.Block, at int) bool {
			for i := at; i < len(b.Stmts); i++ {
				s := b.Stmts[i]
				if chk, ok := s.(*ir.CheckStmt); ok && chk.Guard == nil && env.FamilyOf(chk) == fam {
					if chk.Const >= v {
						chk.Const = v // latest placement = strengthen the use
						return true
					}
					// A stronger check: every later use is covered by it;
					// the delayed placement is unnecessary on this path.
					return true
				}
				if kills(env, s, fam) {
					return true // path dies; ant guaranteed no use first
				}
			}
			return false
		}

		earliestExit := make(map[*ir.Block]bool)
		for _, pl := range grouped[k] {
			if !strengthenFirstOcc(pl.block, pl.at) {
				earliestExit[pl.block] = true
			}
		}
		if len(earliestExit) == 0 {
			continue
		}

		// occ/kill/cover summaries per block (first relevant event).
		occ := make(map[*ir.Block]bool)  // contains a use or provider
		kill := make(map[*ir.Block]bool) // kills the family
		for _, b := range order {
			for _, s := range b.Stmts {
				if chk, ok := s.(*ir.CheckStmt); ok && chk.Guard == nil && env.FamilyOf(chk) == fam {
					occ[b] = true
					break
				}
				if kills(env, s, fam) {
					kill[b] = true
					break
				}
			}
		}

		// LATERIN(b) = AND over preds of LATER(p,b);
		// LATER(p,b) = earliestExit(p) ∨ (LATERIN(p) ∧ ¬occ(p) ∧ ¬kill(p)).
		laterIn := make(map[*ir.Block]bool, len(order))
		for _, b := range order {
			laterIn[b] = len(b.Preds) > 0
		}
		changed := true
		for changed {
			changed = false
			for _, b := range order {
				if len(b.Preds) == 0 {
					continue
				}
				val := true
				for _, p := range b.Preds {
					if !(earliestExit[p] || (laterIn[p] && !occ[p] && !kill[p])) {
						val = false
						break
					}
				}
				if laterIn[b] != val {
					laterIn[b] = val
					changed = true
				}
			}
		}

		// Materialize: a block whose entry receives the delayed check
		// (laterIn) absorbs it at its first occurrence; edges that carry
		// the check into a merge that cannot accept it get an insertion
		// at the edge (end of pred, which has a single successor after
		// critical-edge splitting).
		for _, b := range order {
			if laterIn[b] {
				strengthenFirstOcc(b, 0)
				continue
			}
			for _, p := range b.Preds {
				carries := earliestExit[p] || (laterIn[p] && !occ[p] && !kill[p])
				if carries && len(p.Succs()) == 1 {
					c.insertCheckAt(p, len(p.Stmts), fam, v, "LNI placement")
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// LI / LLS: preheader insertion (paper §3.3, Figure 6)

// preheaderInsert hoists checks out of counted loops, innermost first.
// When lls is true, linear checks are hoisted via loop-limit substitution
// in addition to invariant checks.
func (c *funcCtx) preheaderInsert(lls bool) {
	for _, l := range c.forest.Loops { // innermost first
		c.hoistLoop(l, lls)
		c.rehoistCondChecks(l)
	}
}

// hoistLoop hoists anticipatable invariant (and, with lls, linear)
// checks of loop l into its preheader as (cond-)checks.
func (c *funcCtx) hoistLoop(l *loops.Loop, lls bool) {
	if !c.opts.Mode.CrossFamily() {
		// A hoisted cond-check only pays off through the preheader→body
		// implication; with cross-family implications disabled, inserting
		// it would strictly add checks.
		return
	}
	if l.Do == nil {
		return // while loop: no trip count, no safe guard (paper §3.3)
	}
	guard, gok := c.ind.GuardExpr(l)
	if !gok {
		return // provably zero-trip (or unavailable): nothing to hoist
	}

	env := dataflow.NewEnv(c.fn, c.opts.Mode)
	antIn, _ := env.Anticipatability()
	bodyAnt := antIn[l.Do.BodyEntry]
	headerVals := c.ssa.OutValues[l.Header]

	// Profitability (paper §2.1 step 3): hoisting must make some check in
	// the loop body redundant. Record, per family terms, the weakest
	// constant occurring on an unguarded in-loop check.
	inLoopMax := make(map[string]int64)
	for _, b := range l.SortedBlocks() {
		for _, s := range b.Stmts {
			if chk, ok := s.(*ir.CheckStmt); ok && chk.Guard == nil {
				k := ir.FamilyKey(chk.Terms)
				if cur, seen := inLoopMax[k]; !seen || chk.Const > cur {
					inLoopMax[k] = chk.Const
				}
			}
		}
	}

	hKey := ir.Key(&ir.VarRef{Var: c.ind.HVar(l)})
	inserted := make(map[string]bool)

	for idx, fam := range env.Reg.Families {
		v := bodyAnt[idx]
		if v == rangecheck.None || v == rangecheck.AllChecks {
			continue
		}
		if maxC, ok := inLoopMax[ir.FamilyKey(fam.Terms)]; !ok || maxC < v {
			continue // nothing in the loop would be covered: unprofitable
		}
		ie := c.ind.IEOfFormAt(fam.Terms, l, headerVals)
		var hoisted linform.Form
		switch {
		case ie.Class == induction.Invariant:
			hoisted = ie.Form
		case lls && ie.Class == induction.Linear:
			slope := ie.Form.CoefOf(hKey)
			if slope > 0 {
				lastH, ok := c.ind.LastH(l)
				if !ok {
					continue
				}
				hoisted = ie.Form.SubstAtom(hKey, lastH)
			} else {
				hoisted = ie.Form.SubstAtom(hKey, linform.Form{}) // h = 0
			}
		default:
			continue
		}

		terms := ir.NormalizeTerms(cloneTerms(hoisted.Terms))
		konst := v - hoisted.Const
		dedupe := fmt.Sprintf("%s<=%d", ir.FamilyKey(terms), konst)
		if !inserted[dedupe] {
			inserted[dedupe] = true
			var g ir.Expr
			if guard != nil {
				g = ir.CloneExpr(guard)
			}
			chk := &ir.CheckStmt{
				Terms: terms,
				Const: konst,
				Guard: g,
				Note:  fmt.Sprintf("hoisted from loop b%d", l.Header.ID),
			}
			pre := l.Preheader
			pre.InsertStmts(len(pre.Stmts), chk)
			c.res.Inserted++
		}

		// The hoisted check covers every iteration's instance: eliminate
		// the loop-body checks it implies (the preheader→body CIG edge,
		// paper §3.4 / Table 3's "only important implications").
		c.eliminateCovered(l, env, fam, v)
	}
}

// eliminateCovered removes unguarded checks of fam with constant ≥ v
// from the blocks of l. The hoisted preheader check covers the value the
// family's range-expression holds *at loop-body entry* of each iteration;
// an occurrence downstream of an in-body definition of one of the
// family's variables (a derived induction variable updated mid-body)
// reads a different value and must stay. This mirrors the paper's
// dataflow formulation, where the preheader→body cover fact is killed by
// such a definition.
func (c *funcCtx) eliminateCovered(l *loops.Loop, env *dataflow.Env, fam *rangecheck.Family, v int64) {
	famTerms := ir.FamilyKey(fam.Terms)
	unkilledIn := c.unkilledAtEntry(l, env, fam)
	for _, b := range l.SortedBlocks() {
		state := unkilledIn[b]
		kept := b.Stmts[:0]
		for _, s := range b.Stmts {
			if chk, ok := s.(*ir.CheckStmt); ok && chk.Guard == nil && state {
				if ir.FamilyKey(chk.Terms) == famTerms && chk.Const >= v {
					c.res.EliminatedCover++
					continue
				}
			}
			if kills(env, s, fam) {
				state = false
			}
			kept = append(kept, s)
		}
		b.Stmts = kept
	}
}

// unkilledAtEntry computes, per loop block, whether the family's
// range-expression still holds its loop-body-entry value on every path
// to the block's entry within one iteration. The loop header resets the
// fact (each iteration re-reads the family at body entry).
func (c *funcCtx) unkilledAtEntry(l *loops.Loop, env *dataflow.Env, fam *rangecheck.Family) map[*ir.Block]bool {
	blocks := l.SortedBlocks()
	killsBlock := make(map[*ir.Block]bool, len(blocks))
	for _, b := range blocks {
		for _, s := range b.Stmts {
			if kills(env, s, fam) {
				killsBlock[b] = true
				break
			}
		}
	}
	in := make(map[*ir.Block]bool, len(blocks))
	for _, b := range blocks {
		in[b] = true
	}
	changed := true
	for changed {
		changed = false
		for _, b := range blocks {
			if b == l.Header {
				continue // each iteration re-enters here: fact holds
			}
			val := true
			for _, p := range b.Preds {
				if !l.Blocks[p] {
					continue
				}
				if !in[p] || killsBlock[p] {
					val = false
					break
				}
			}
			if in[b] != val {
				in[b] = val
				changed = true
			}
		}
	}
	return in
}

// rehoistCondChecks moves cond-checks sitting in inner preheaders (or any
// block executing on every iteration) of l out to l's preheader, so
// checks migrate to the outermost loop possible (paper §3.3).
func (c *funcCtx) rehoistCondChecks(l *loops.Loop) {
	if l.Do == nil {
		return
	}
	guard, gok := c.ind.GuardExpr(l)
	if !gok {
		return
	}

	// What can l modify?
	assigned := make(map[int]bool)
	stored := make(map[int]bool)
	hasCall := false
	for _, b := range l.SortedBlocks() {
		for _, s := range b.Stmts {
			switch s := s.(type) {
			case *ir.AssignStmt:
				assigned[s.Dst.ID] = true
			case *ir.StoreStmt:
				stored[s.Arr.ID] = true
			case *ir.CallStmt:
				hasCall = true
			}
		}
	}
	invariant := func(e ir.Expr) bool {
		ok := true
		ir.WalkExpr(e, func(x ir.Expr) {
			switch x := x.(type) {
			case *ir.VarRef:
				if assigned[x.Var.ID] || (hasCall && x.Var.Global) {
					ok = false
				}
			case *ir.Load:
				if stored[x.Arr.ID] || (hasCall && x.Arr.Global) {
					ok = false
				}
			}
		})
		return ok
	}

	for _, b := range l.SortedBlocks() {
		if b == l.Header {
			continue
		}
		// The block must execute on every iteration of l.
		domAll := c.dom.Dominates(l.Do.BodyEntry, b) || b == l.Do.BodyEntry
		for _, latch := range l.Latches {
			if !c.dom.Dominates(b, latch) {
				domAll = false
			}
		}
		if !domAll {
			continue
		}
		kept := b.Stmts[:0]
		for _, s := range b.Stmts {
			chk, ok := s.(*ir.CheckStmt)
			if !ok || chk.Guard == nil {
				kept = append(kept, s)
				continue
			}
			allInv := invariant(chk.Guard)
			for _, t := range chk.Terms {
				if !invariant(t.Atom) {
					allInv = false
				}
			}
			if !allInv {
				kept = append(kept, s)
				continue
			}
			// Move to l's preheader, conjoining l's entry guard.
			if guard != nil {
				chk.Guard = &ir.Bin{Op: ir.OpAnd, L: ir.CloneExpr(guard), R: chk.Guard, Typ: ir.Bool}
			}
			pre := l.Preheader
			pre.InsertStmts(len(pre.Stmts), chk)
		}
		b.Stmts = kept
	}
}

// ---------------------------------------------------------------------------
// INX: rewrite checks over induction expressions (paper §2.3, §4.3)

// rewriteINX replaces each in-loop check's range-expression with its
// induction expression over the innermost enclosing loop's basic
// variable h, when every atom classifies as invariant or linear. Loops
// whose h is referenced get it materialized (h=0 in the preheader,
// h=h+1 at each latch).
func (c *funcCtx) rewriteINX() {
	needH := make(map[*loops.Loop]bool)
	for _, b := range c.fn.Blocks {
		l := c.forest.LoopOf(b)
		if l == nil {
			continue
		}
		for _, s := range b.Stmts {
			chk, ok := s.(*ir.CheckStmt)
			if !ok || chk.Guard != nil {
				continue
			}
			ie := c.inxForm(chk, l)
			if ie == nil {
				continue
			}
			newTerms := ir.NormalizeTerms(cloneTerms(ie.Terms))
			// The rewritten check stays inside the loop body, so every
			// atom it reads must hold the same value throughout the
			// loop (h excepted).
			if !c.ind.LoopStableTerms(l, newTerms) {
				continue
			}
			chk.Terms = newTerms
			chk.Const -= ie.Const
			hk := ir.Key(&ir.VarRef{Var: c.ind.HVar(l)})
			for _, t := range newTerms {
				if ir.Key(t.Atom) == hk {
					needH[l] = true
				}
			}
		}
	}
	for l := range needH {
		c.materializeH(l)
	}
}

// inxForm returns the induction form of a check's range-expression, or
// nil when it is not expressible (then the PRX form is kept).
func (c *funcCtx) inxForm(chk *ir.CheckStmt, l *loops.Loop) *linform.Form {
	acc := linform.Form{}
	for _, t := range chk.Terms {
		var ie induction.IE
		if vr, ok := t.Atom.(*ir.VarRef); ok {
			use := c.ssa.UseOf[vr]
			if use == nil {
				return nil
			}
			ie = c.ind.IEOfValue(use, l)
		} else {
			ie = c.ind.IEOfOpaqueAtom(t.Atom, l)
		}
		if ie.Class != induction.Invariant && ie.Class != induction.Linear {
			return nil
		}
		acc = acc.Add(ie.Form.Scale(t.Coef))
	}
	return &acc
}

// materializeH gives loop l a runtime basic variable: h=0 in the
// preheader, h=h+1 at the end of each latch.
func (c *funcCtx) materializeH(l *loops.Loop) {
	h := c.ind.HVar(l)
	pre := l.Preheader
	pre.InsertStmts(len(pre.Stmts), &ir.AssignStmt{Dst: h, Src: &ir.ConstInt{V: 0}})
	for _, latch := range l.Latches {
		latch.InsertStmts(len(latch.Stmts), &ir.AssignStmt{
			Dst: h,
			Src: &ir.Bin{Op: ir.OpAdd, L: &ir.VarRef{Var: h}, R: &ir.ConstInt{V: 1}, Typ: ir.Int},
		})
	}
}

func cloneTerms(terms []ir.CheckTerm) []ir.CheckTerm {
	out := make([]ir.CheckTerm, len(terms))
	for i, t := range terms {
		out[i] = ir.CheckTerm{Coef: t.Coef, Atom: ir.CloneExpr(t.Atom)}
	}
	return out
}
