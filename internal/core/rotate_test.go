package core_test

import (
	"testing"

	"nascent/internal/core"
	"nascent/internal/testutil"
)

// whileInvariantSrc: an invariant subscript inside a while loop. SE
// cannot hoist its checks (zero-trip safety) unless the loop is rotated.
const whileInvariantSrc = `program p
  real a(100)
  integer i, k, n
  n = 500
  k = 7
  call f()
  i = 0
  while (i < n)
    a(k) = a(k) + 1.0
    i = i + 1
  endwhile
end
subroutine f()
  k = k + 0
  n = n + 0
end
`

func TestRotationEnablesSEWhileHoisting(t *testing.T) {
	// Without rotation, SE leaves the invariant checks in the loop body.
	plain, _ := optimize(t, whileInvariantSrc, core.Options{Scheme: core.SE})
	rPlain := run(t, plain)
	if rPlain.Trapped {
		t.Fatalf("trap: %s", rPlain.TrapNote)
	}

	// With rotation, the checks execute once per loop entry.
	rot, _ := optimize(t, whileInvariantSrc, core.Options{Scheme: core.SE, Rotate: true})
	rRot := run(t, rot)
	if rRot.Trapped {
		t.Fatalf("rotated trap: %s", rRot.TrapNote)
	}
	if rRot.Output != rPlain.Output {
		t.Fatalf("rotation changed output: %q vs %q", rRot.Output, rPlain.Output)
	}
	if rRot.Checks >= rPlain.Checks {
		t.Errorf("rotation did not help SE: %d >= %d dynamic checks", rRot.Checks, rPlain.Checks)
	}
	if rRot.Checks > 4 {
		t.Errorf("rotated SE left %d dynamic checks, want <= 4 (once per entry)", rRot.Checks)
	}
}

func TestRotationPreservesZeroTripSafety(t *testing.T) {
	// The loop never runs and the body access is out of range: the
	// rotated program must not trap (the guard keeps the hoisted checks
	// on the taken-at-least-once path only).
	src := `program p
  real a(10)
  integer i, n
  n = 0
  call f()
  i = 0
  while (i < n)
    a(i + 100) = 1.0
    i = i + 1
  endwhile
  print 7
end
subroutine f()
  n = n + 0
end
`
	p, _ := optimize(t, src, core.Options{Scheme: core.SE, Rotate: true})
	r := run(t, p)
	if r.Trapped {
		t.Fatalf("rotated zero-trip loop trapped: %s", r.TrapNote)
	}
	if r.Output != "7\n" {
		t.Errorf("output = %q", r.Output)
	}
}

func TestRotationPreservesSemanticsAcrossSchemes(t *testing.T) {
	src := `program p
  real a(20)
  integer i, n
  n = 15
  call f()
  i = 1
  while (i <= n)
    a(i) = a(i) + float(i)
    i = i + 2
  endwhile
  i = 1
  while (i * i < n * 3)
    a(i) = a(i) * 0.5
    i = i + 1
  endwhile
  print a(1), a(5)
end
subroutine f()
  n = n + 0
end
`
	pn := testutil.BuildIR(t, src, true)
	rn := run(t, pn)
	for _, sch := range core.Schemes {
		po, _ := optimize(t, src, core.Options{Scheme: sch, Rotate: true})
		ro := run(t, po)
		if ro.Trapped != rn.Trapped || ro.Output != rn.Output {
			t.Errorf("%v+rotate changed semantics: trapped %v->%v output %q->%q",
				sch, rn.Trapped, ro.Trapped, rn.Output, ro.Output)
		}
		if ro.Checks > rn.Checks {
			t.Errorf("%v+rotate executed more checks than naive: %d > %d", sch, ro.Checks, rn.Checks)
		}
	}
}

func TestRotationLeavesDoLoopsAlone(t *testing.T) {
	src := `program p
  real a(50)
  integer i
  do i = 1, 50
    a(i) = 1.0
  enddo
end
`
	plain, _ := optimize(t, src, core.Options{Scheme: core.LLS})
	rot, _ := optimize(t, src, core.Options{Scheme: core.LLS, Rotate: true})
	rp := run(t, plain)
	rr := run(t, rot)
	if rp.Checks != rr.Checks || rp.Instructions != rr.Instructions {
		t.Errorf("rotation perturbed a DO-only program: checks %d vs %d, instr %d vs %d",
			rp.Checks, rr.Checks, rp.Instructions, rr.Instructions)
	}
}

func TestRotationOnSuitePrograms(t *testing.T) {
	// dyfesm and simple contain while loops; rotation must preserve
	// their outputs under SE and never increase dynamic checks.
	for _, name := range []string{"dyfesm", "simple"} {
		src := suiteSource(t, name)
		pn := testutil.BuildIR(t, src, true)
		rn := run(t, pn)
		po, _ := optimize(t, src, core.Options{Scheme: core.SE, Rotate: true})
		ro := run(t, po)
		if ro.Trapped || ro.Output != rn.Output {
			t.Errorf("%s: rotation broke semantics (trapped=%v)", name, ro.Trapped)
		}
		if ro.Checks > rn.Checks {
			t.Errorf("%s: more checks than naive", name)
		}
	}
}
