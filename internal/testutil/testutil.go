// Package testutil provides shared helpers for compiling MF snippets in
// tests across analysis packages.
package testutil

import (
	"testing"

	"nascent/internal/dom"
	"nascent/internal/ir"
	"nascent/internal/irbuild"
	"nascent/internal/loops"
	"nascent/internal/parser"
	"nascent/internal/sem"
	"nascent/internal/ssa"
)

// BuildIR compiles MF source to IR, failing the test on any error.
func BuildIR(t *testing.T, src string, checks bool) *ir.Program {
	t.Helper()
	f, err := parser.Parse("test.mf", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Analyze(f)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	p, err := irbuild.Build(sp, irbuild.Options{BoundsChecks: checks})
	if err != nil {
		t.Fatalf("irbuild: %v", err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return p
}

// Analyzed bundles the per-function analyses tests typically need.
type Analyzed struct {
	Prog   *ir.Program
	Fn     *ir.Func
	Dom    *dom.Tree
	Forest *loops.Forest
	SSA    *ssa.Info
}

// AnalyzeMain compiles src and runs dominators, loop analysis (which may
// create preheaders), and SSA on the main function.
func AnalyzeMain(t *testing.T, src string, checks bool) *Analyzed {
	t.Helper()
	p := BuildIR(t, src, checks)
	return AnalyzeFunc(t, p, p.Main())
}

// AnalyzeFunc runs the analysis pipeline on one function of p.
func AnalyzeFunc(t *testing.T, p *ir.Program, f *ir.Func) *Analyzed {
	t.Helper()
	f.SplitCriticalEdges()
	tree := dom.Compute(f)
	forest := loops.Analyze(f, tree)
	// Loop analysis may add preheaders; recompute dominators before SSA.
	tree = dom.Compute(f)
	info := ssa.Build(f, tree)
	if err := f.Verify(); err != nil {
		t.Fatalf("verify after analyses: %v", err)
	}
	return &Analyzed{Prog: p, Fn: f, Dom: tree, Forest: forest, SSA: info}
}

// FindVar returns the variable with the given name visible in f.
func FindVar(t *testing.T, p *ir.Program, f *ir.Func, name string) *ir.Var {
	t.Helper()
	for _, v := range f.Locals {
		if v.Name == name {
			return v
		}
	}
	for _, v := range p.Globals {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("variable %q not found", name)
	return nil
}
