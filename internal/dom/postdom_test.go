package dom_test

import (
	"testing"

	"nascent/internal/dom"
	"nascent/internal/ir"
	"nascent/internal/testutil"
)

func TestPostDomDiamond(t *testing.T) {
	p := testutil.BuildIR(t, `program p
  if (i < 5) then
    j = 1
  else
    j = 2
  endif
  k = 3
end
`, false)
	f := p.Main()
	pt := dom.ComputePost(f)
	entry := f.Entry()
	ifTerm := entry.Term.(*ir.If)
	thenB, elseB := ifTerm.Then, ifTerm.Else
	join := thenB.Succs()[0]

	if !pt.PostDominates(join, entry) {
		t.Error("join must postdominate entry")
	}
	if !pt.PostDominates(join, thenB) || !pt.PostDominates(join, elseB) {
		t.Error("join must postdominate both arms")
	}
	if pt.PostDominates(thenB, entry) {
		t.Error("one arm must not postdominate entry")
	}
	if !pt.PostDominates(entry, entry) {
		t.Error("self postdominance")
	}
}

func TestPostDomLoop(t *testing.T) {
	p := testutil.BuildIR(t, `program p
  integer i
  do i = 1, 10
    if (i > 5) then
      j = 1
    endif
    k = i
  enddo
end
`, false)
	f := p.Main()
	pt := dom.ComputePost(f)
	dl := f.DoLoops[0]

	// The latch (containing k = i and the increment) postdominates the
	// body entry: it runs on every iteration.
	if !pt.PostDominates(dl.Latch, dl.BodyEntry) {
		t.Error("latch must postdominate body entry")
	}
	// The conditional block does not postdominate the body entry.
	ifTerm := dl.BodyEntry.Term.(*ir.If)
	if pt.PostDominates(ifTerm.Then, dl.BodyEntry) {
		t.Error("conditional arm must not postdominate body entry")
	}
	// The header postdominates everything in the loop (all paths exit
	// through it).
	if !pt.PostDominates(dl.Header, dl.Latch) {
		t.Error("header must postdominate the latch")
	}
}

func TestPostDomExitBlocks(t *testing.T) {
	p := testutil.BuildIR(t, `program p
  if (i > 0) then
    return
  endif
  j = 1
end
`, false)
	f := p.Main()
	pt := dom.ComputePost(f)
	// Find the single Ret block.
	var exit *ir.Block
	for _, b := range f.Blocks {
		if _, ok := b.Term.(*ir.Ret); ok {
			exit = b
		}
	}
	if exit == nil {
		t.Fatal("no exit block")
	}
	if got := pt.IPDom(exit); got != exit {
		t.Errorf("exit ipdom = %v, want itself", got)
	}
	if !pt.PostDominates(exit, f.Entry()) {
		t.Error("single exit must postdominate entry")
	}
}
