package dom_test

import (
	"testing"

	"nascent/internal/dom"
	"nascent/internal/ir"
	"nascent/internal/testutil"
)

func TestDiamond(t *testing.T) {
	a := testutil.BuildIR(t, `program p
  if (i < 5) then
    j = 1
  else
    j = 2
  endif
  k = 3
end
`, false)
	f := a.Main()
	tree := dom.Compute(f)
	entry := f.Entry()
	ifTerm := entry.Term.(*ir.If)
	thenB, elseB := ifTerm.Then, ifTerm.Else
	join := thenB.Succs()[0]

	if tree.IDom(thenB) != entry || tree.IDom(elseB) != entry {
		t.Error("branch arms not immediately dominated by entry")
	}
	if tree.IDom(join) != entry {
		t.Errorf("join idom = b%d, want entry", tree.IDom(join).ID)
	}
	if !tree.Dominates(entry, join) || tree.Dominates(thenB, join) {
		t.Error("dominance relation wrong at join")
	}
	// Frontier of each arm is the join block.
	fr := tree.Frontier(thenB)
	if len(fr) != 1 || fr[0] != join {
		t.Errorf("frontier(then) = %v", fr)
	}
}

func TestLoopDominance(t *testing.T) {
	a := testutil.BuildIR(t, `program p
  integer i
  do i = 1, 10
    j = i
  enddo
  k = 1
end
`, false)
	f := a.Main()
	tree := dom.Compute(f)
	dl := f.DoLoops[0]
	if !tree.Dominates(dl.Header, dl.BodyEntry) {
		t.Error("header must dominate body")
	}
	if !tree.Dominates(dl.Header, dl.Latch) {
		t.Error("header must dominate latch")
	}
	if tree.Dominates(dl.BodyEntry, dl.Header) {
		t.Error("body must not dominate header")
	}
	// Back edge: latch's frontier includes the header.
	found := false
	for _, b := range tree.Frontier(dl.Latch) {
		if b == dl.Header {
			found = true
		}
	}
	if !found {
		t.Errorf("frontier(latch) = %v, want to include header", tree.Frontier(dl.Latch))
	}
}

func TestSelfDominance(t *testing.T) {
	a := testutil.BuildIR(t, "program p\n  i = 1\nend\n", false)
	f := a.Main()
	tree := dom.Compute(f)
	for _, b := range tree.Order() {
		if !tree.Dominates(b, b) {
			t.Errorf("block b%d does not dominate itself", b.ID)
		}
	}
	if tree.IDom(f.Entry()) != f.Entry() {
		t.Error("entry idom should be itself")
	}
}

func TestNestedLoopsOrder(t *testing.T) {
	a := testutil.BuildIR(t, `program p
  integer i, j
  do i = 1, 4
    do j = 1, 4
      k = i + j
    enddo
  enddo
end
`, false)
	f := a.Main()
	tree := dom.Compute(f)
	outer, inner := f.DoLoops[0], f.DoLoops[1]
	if !tree.Dominates(outer.Header, inner.Header) {
		t.Error("outer header must dominate inner header")
	}
	if tree.Dominates(inner.Header, outer.Header) {
		t.Error("inner header must not dominate outer header")
	}
	// RPO puts the entry first.
	if tree.Order()[0] != f.Entry() {
		t.Error("RPO does not start at entry")
	}
}
