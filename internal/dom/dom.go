// Package dom computes dominator trees, dominance frontiers, and
// postdominators using the iterative algorithm of Cooper, Harvey &
// Kennedy ("A Simple, Fast Dominance Algorithm").
package dom

import "nascent/internal/ir"

// Tree is the dominator tree of a function.
type Tree struct {
	fn       *ir.Func
	order    []*ir.Block       // reverse postorder
	rpoIndex map[*ir.Block]int // block -> position in order
	idom     map[*ir.Block]*ir.Block
	children map[*ir.Block][]*ir.Block
	frontier map[*ir.Block][]*ir.Block
}

// Compute builds the dominator tree of f. Unreachable blocks are ignored.
func Compute(f *ir.Func) *Tree {
	t := &Tree{
		fn:       f,
		order:    f.ReversePostorder(),
		rpoIndex: make(map[*ir.Block]int),
		idom:     make(map[*ir.Block]*ir.Block),
		children: make(map[*ir.Block][]*ir.Block),
	}
	for i, b := range t.order {
		t.rpoIndex[b] = i
	}
	entry := f.Entry()
	t.idom[entry] = entry

	changed := true
	for changed {
		changed = false
		for _, b := range t.order[1:] {
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if _, ok := t.idom[p]; !ok {
					continue // unprocessed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b] != newIdom {
				t.idom[b] = newIdom
				changed = true
			}
		}
	}

	for _, b := range t.order[1:] {
		if id := t.idom[b]; id != nil {
			t.children[id] = append(t.children[id], b)
		}
	}
	return t
}

func (t *Tree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for t.rpoIndex[a] > t.rpoIndex[b] {
			a = t.idom[a]
		}
		for t.rpoIndex[b] > t.rpoIndex[a] {
			b = t.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of b (the entry's IDom is itself).
func (t *Tree) IDom(b *ir.Block) *ir.Block { return t.idom[b] }

// Children returns the dominator-tree children of b.
func (t *Tree) Children(b *ir.Block) []*ir.Block { return t.children[b] }

// Reachable reports whether b was reachable when the tree was computed.
func (t *Tree) Reachable(b *ir.Block) bool {
	_, ok := t.idom[b]
	return ok
}

// Dominates reports whether a dominates b (every block dominates itself).
func (t *Tree) Dominates(a, b *ir.Block) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	entry := t.fn.Entry()
	for {
		if a == b {
			return true
		}
		if b == entry {
			return false
		}
		b = t.idom[b]
	}
}

// Order returns the blocks in reverse postorder.
func (t *Tree) Order() []*ir.Block { return t.order }

// Frontier returns the dominance frontier of b, computing all frontiers
// lazily on first use.
func (t *Tree) Frontier(b *ir.Block) []*ir.Block {
	if t.frontier == nil {
		t.frontier = make(map[*ir.Block][]*ir.Block)
		for _, x := range t.order {
			if len(x.Preds) < 2 {
				continue
			}
			for _, p := range x.Preds {
				if !t.Reachable(p) {
					continue
				}
				runner := p
				for runner != t.idom[x] {
					t.frontier[runner] = append(t.frontier[runner], x)
					runner = t.idom[runner]
				}
			}
		}
	}
	return t.frontier[b]
}
