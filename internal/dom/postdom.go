package dom

import "nascent/internal/ir"

// PostTree is the postdominator tree of a function: a postdominates b
// when every path from b to function exit passes through a. It is
// computed over the reversed CFG with a virtual exit joining all Ret
// blocks.
type PostTree struct {
	fn       *ir.Func
	order    []*ir.Block // reverse postorder of the reversed CFG
	rpoIndex map[*ir.Block]int
	ipdom    map[*ir.Block]*ir.Block // nil for virtual-exit roots
}

// ComputePost builds the postdominator tree of f.
func ComputePost(f *ir.Func) *PostTree {
	t := &PostTree{
		fn:       f,
		rpoIndex: make(map[*ir.Block]int),
		ipdom:    make(map[*ir.Block]*ir.Block),
	}

	// Reverse postorder over the reversed CFG, starting from every exit
	// block (Ret terminators).
	seen := make(map[*ir.Block]bool, len(f.Blocks))
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, p := range b.Preds {
			if !seen[p] {
				dfs(p)
			}
		}
		t.order = append(t.order, b)
	}
	var exits []*ir.Block
	for _, b := range f.Blocks {
		if _, ok := b.Term.(*ir.Ret); ok {
			exits = append(exits, b)
		}
	}
	for _, e := range exits {
		if !seen[e] {
			dfs(e)
		}
	}
	for i, j := 0, len(t.order)-1; i < j; i, j = i+1, j-1 {
		t.order[i], t.order[j] = t.order[j], t.order[i]
	}
	for i, b := range t.order {
		t.rpoIndex[b] = i
	}

	// Exit blocks are roots (their ipdom is the virtual exit = nil, but
	// for the intersect walk each root maps to itself).
	isRoot := make(map[*ir.Block]bool, len(exits))
	for _, e := range exits {
		isRoot[e] = true
		t.ipdom[e] = e
	}

	changed := true
	for changed {
		changed = false
		for _, b := range t.order {
			if isRoot[b] {
				continue
			}
			var newIdom *ir.Block
			for _, s := range b.Succs() {
				if _, ok := t.ipdom[s]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = s
				} else {
					newIdom = t.intersect(s, newIdom)
				}
			}
			if newIdom != nil && t.ipdom[b] != newIdom {
				t.ipdom[b] = newIdom
				changed = true
			}
		}
	}
	return t
}

func (t *PostTree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for t.rpoIndex[a] > t.rpoIndex[b] {
			if t.ipdom[a] == a {
				return b // reached a root: the virtual exit dominates
			}
			a = t.ipdom[a]
		}
		for t.rpoIndex[b] > t.rpoIndex[a] {
			if t.ipdom[b] == b {
				return a
			}
			b = t.ipdom[b]
		}
	}
	return a
}

// IPDom returns the immediate postdominator of b (b itself for exit
// blocks; nil if b cannot reach an exit).
func (t *PostTree) IPDom(b *ir.Block) *ir.Block { return t.ipdom[b] }

// PostDominates reports whether a postdominates b (every block
// postdominates itself).
func (t *PostTree) PostDominates(a, b *ir.Block) bool {
	if a == b {
		_, ok := t.ipdom[b]
		return ok
	}
	cur, ok := t.ipdom[b]
	if !ok {
		return false
	}
	for {
		if cur == a {
			return true
		}
		next := t.ipdom[cur]
		if next == nil || next == cur {
			return a == cur
		}
		cur = next
	}
}
