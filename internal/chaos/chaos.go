// Package chaos is a deterministic, seeded fault-injection registry.
//
// Every recovery path in the pipeline — guard containment, per-function
// degradation, resource budgets, evalpool supervision — exists to turn
// internal failures into typed, positioned errors. Nothing exercises
// those paths systematically on organic bugs alone, so this package
// plants *named injection sites* throughout the pipeline (lexer, parser,
// sem, irbuild, optimizer, both execution engines, evalpool workers) and
// lets tests, the oracle chaos sweep, and the CLIs provoke each failure
// mode on demand.
//
// # Determinism and replay
//
// Whether a site fires is a pure function of (seed, site, key): there is
// no global counter, no clock, and no real randomness, so a fault
// observed once is observed on every rerun with the same spec, at any
// worker count and in any execution order. A one-line spec
//
//	seed:rate[:site]
//
// (e.g. "42:0.05" or "7:1:pool.worker.kill") replays any logged failure:
// quarantine errors and sweep reports carry the spec that produced them.
//
// # Cost when disabled
//
// Injection is off by default. Every site guards itself behind a single
// atomic load (Active); with no spec installed the hot path costs one
// predictable branch and performs no hashing, locking, or allocation, so
// the chaos hooks are observably free — the chaos-off determinism tests
// in internal/report pin byte-identical tables with the hooks compiled
// in.
package chaos

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Site names one injection point. Sites are stable identifiers: they
// appear in replay specs, logs, and docs/ROBUSTNESS.md.
type Site string

// Injection sites, one per provoked failure mode.
const (
	// SiteLexError amplifies a lexical error: the lexer reports an
	// injected positioned diagnostic for the whole source.
	SiteLexError Site = "lex.error"
	// SiteParseError makes the parser fail with a typed InjectedError.
	SiteParseError Site = "parse.error"
	// SiteSemError makes semantic analysis fail with a typed InjectedError.
	SiteSemError Site = "sem.error"
	// SiteLowerPanic panics inside IR lowering; the compile boundary must
	// contain it as an *InternalError with stage "lower".
	SiteLowerPanic Site = "lower.panic"
	// SiteOptPanic panics inside the per-function optimizer; containment
	// must degrade that function to its naive body (OptReport.Degraded).
	SiteOptPanic Site = "optimize.panic"
	// SiteOptMalformed corrupts a function's IR mid-optimization (a block
	// loses its terminator) and trips the verifier; containment must
	// degrade the function, never emit the malformed program.
	SiteOptMalformed Site = "optimize.malformed"
	// SiteTreeBudget / SiteTreeCancel / SiteTreePanic fire at the tree
	// engine's poll point: spurious instruction-budget exhaustion,
	// spurious cancellation, and an induced panic that guard containment
	// must surface as an *InternalError with stage "run".
	SiteTreeBudget Site = "tree.poll.budget"
	SiteTreeCancel Site = "tree.poll.cancel"
	SiteTreePanic  Site = "tree.poll.panic"
	// SiteVMBudget / SiteVMCancel / SiteVMPanic are the same three faults
	// at the bytecode VM's poll point.
	SiteVMBudget Site = "vm.poll.budget"
	SiteVMCancel Site = "vm.poll.cancel"
	SiteVMPanic  Site = "vm.poll.panic"
	// SiteRCEGuardFail forces a passing preheader range guard (the rce
	// pass's opRangeGuard, in both the switch VM and the jit) to take
	// its deopt edge anyway: the original fully-checked loop code runs
	// instead of the guard-free fast copy. Deopt is the original
	// semantics, so every observable must stay byte-identical — this
	// site exists to keep the deopt path continuously exercised. Keyed
	// by the containing function's name.
	SiteRCEGuardFail Site = "vm.rce.guard.fail"
	// SiteWorkerKill kills an evalpool worker mid-job (a panic the
	// supervisor must catch and retry on a fresh worker). Keyed by
	// "job#attempt", so a retried attempt re-rolls its fate.
	SiteWorkerKill Site = "pool.worker.kill"
	// SiteWorkerHang hangs an evalpool worker until its attempt is
	// cancelled; the supervisor's job deadline must detect and retry it.
	// Keyed by "job#attempt".
	SiteWorkerHang Site = "pool.worker.hang"
	// SiteWorkerSlow delays a worker briefly before the job runs
	// (the job still completes correctly). Keyed by job name.
	SiteWorkerSlow Site = "pool.worker.slow"
	// SiteTierPromote fails a background tier promotion (the
	// Optimize/JITCompile recompilation the tiering controller runs off
	// the hot path). The program must keep serving runs at its current
	// tier — promotion failure is contained, never observable in
	// results. Keyed by the target tier name ("vmopt", "vmrce", or
	// "vmjit").
	SiteTierPromote Site = "tier.promote.fail"
	// SiteFleetKill terminates a fleet worker PROCESS mid-job
	// (os.Exit, not a panic): the coordinator must observe the pipe
	// close, fail the in-flight attempts as member loss, respawn the
	// member, and retry elsewhere. Keyed by "job#attempt", so a retried
	// attempt re-rolls its fate.
	SiteFleetKill Site = "fleet.worker.kill"
	// SiteFleetHang stalls a fleet worker process indefinitely; the
	// coordinator's attempt deadline must kill and replace the member.
	// Keyed by "job#attempt".
	SiteFleetHang Site = "fleet.worker.hang"
	// SiteFleetHeartbeatDrop makes a fleet worker swallow a heartbeat
	// probe (no response frame): the coordinator must count the miss,
	// score the member down, and after enough consecutive misses
	// proactively recycle the seat instead of waiting for a mid-job
	// death. Keyed by "member#beat" (per-process beat sequence), so a
	// respawned member re-rolls its fate.
	SiteFleetHeartbeatDrop Site = "fleet.heartbeat.drop"
	// SiteFleetStaleVersion makes a fleet worker advertise a stale
	// progio wire-format version in its hello handshake (simulated
	// version skew mid-rolling-restart): the coordinator must degrade
	// to shipping source instead of compiled bytes to that member, and
	// results must stay byte-identical. Keyed by the member index.
	SiteFleetStaleVersion Site = "fleet.member.stale_version"
	// SiteScrubCorrupt flips a byte of a disk-cache entry as the
	// progcache scrubber reads it (simulated bit rot): the CRC must
	// catch it, the entry must be unlinked and counted, and the next
	// compile must heal it. Keyed by the entry's content-address stem.
	SiteScrubCorrupt Site = "progcache.scrub.corrupt"
	// SiteAuditMismatch forces the in-service differential self-audit
	// to observe a divergence between a served result and its reference
	// re-execution: the typed SelfAuditViolation path, the breaker
	// trip, and the metrics surface must all fire. Keyed by the
	// audited request's cache key.
	SiteAuditMismatch Site = "service.audit.mismatch"
)

// Sites lists every injection site, in pipeline order.
var Sites = []Site{
	SiteLexError, SiteParseError, SiteSemError,
	SiteLowerPanic, SiteOptPanic, SiteOptMalformed,
	SiteTreeBudget, SiteTreeCancel, SiteTreePanic,
	SiteVMBudget, SiteVMCancel, SiteVMPanic,
	SiteRCEGuardFail,
	SiteWorkerKill, SiteWorkerHang, SiteWorkerSlow,
	SiteTierPromote,
	SiteFleetKill, SiteFleetHang,
	SiteFleetHeartbeatDrop, SiteFleetStaleVersion,
	SiteScrubCorrupt, SiteAuditMismatch,
}

// KnownSite reports whether s names a registered injection site.
func KnownSite(s Site) bool {
	for _, k := range Sites {
		if k == s {
			return true
		}
	}
	return false
}

// Spec is one replayable injection configuration.
type Spec struct {
	// Seed drives every injection decision.
	Seed uint64
	// Rate in [0,1] is the fraction of (site, key) pairs that fault.
	Rate float64
	// Site restricts injection to a set of sites: "" means every site,
	// one site name means that site only, and a comma-separated list
	// ("fleet.worker.kill,fleet.heartbeat.drop") arms exactly those
	// sites — the form soak drills use to combine faults under one
	// seed while leaving the rest of the pipeline quiet.
	Site Site
}

// String renders the spec in the canonical "seed:rate[:site]" replay
// form accepted by ParseSpec and the -chaos flags.
func (s Spec) String() string {
	out := fmt.Sprintf("%d:%s", s.Seed, strconv.FormatFloat(s.Rate, 'g', -1, 64))
	if s.Site != "" {
		out += ":" + string(s.Site)
	}
	return out
}

// ParseSpec parses "seed:rate[:site[,site...]]" (e.g. "42:0.05",
// "7:1:pool.worker.kill", "9:0.2:fleet.worker.kill,fleet.worker.hang").
func ParseSpec(text string) (Spec, error) {
	parts := strings.SplitN(text, ":", 3)
	if len(parts) < 2 {
		return Spec{}, fmt.Errorf("chaos: bad spec %q (want seed:rate[:site,...])", text)
	}
	seed, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return Spec{}, fmt.Errorf("chaos: bad seed in %q: %v", text, err)
	}
	rate, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || math.IsNaN(rate) || rate < 0 || rate > 1 {
		return Spec{}, fmt.Errorf("chaos: bad rate in %q (want 0..1)", text)
	}
	spec := Spec{Seed: seed, Rate: rate}
	if len(parts) == 3 {
		for _, name := range strings.Split(parts[2], ",") {
			if !KnownSite(Site(name)) {
				return Spec{}, fmt.Errorf("chaos: unknown site %q (known: %s)", name, siteList())
			}
		}
		spec.Site = Site(parts[2])
	}
	return spec, nil
}

// armed reports whether the spec's site set includes site. The common
// single-site (or all-sites) form never allocates or splits.
func (s Spec) armed(site Site) bool {
	switch {
	case s.Site == "" || s.Site == site:
		return true
	case !strings.Contains(string(s.Site), ","):
		return false
	}
	rest := string(s.Site)
	for {
		i := strings.IndexByte(rest, ',')
		if i < 0 {
			return rest == string(site)
		}
		if rest[:i] == string(site) {
			return true
		}
		rest = rest[i+1:]
	}
}

func siteList() string {
	names := make([]string, len(Sites))
	for i, s := range Sites {
		names[i] = string(s)
	}
	return strings.Join(names, ", ")
}

// Decide is the pure injection decision: whether spec fires fault site
// for key. It is exported so tests can search for seeds with a wanted
// fate (e.g. "attempt 0 dies, attempt 1 survives") instead of
// hard-coding hash-dependent magic numbers.
func Decide(spec Spec, site Site, key string) bool {
	if spec.Rate <= 0 || !spec.armed(site) {
		return false
	}
	if spec.Rate >= 1 {
		return true
	}
	h := hash64(spec.Seed, string(site), key)
	return float64(h>>11)/(1<<53) < spec.Rate
}

// hash64 mixes the seed with the site and key bytes (FNV-1a over both,
// finished with a splitmix64 avalanche). The function is frozen: specs
// logged today must replay identically forever.
func hash64(seed uint64, site, key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(site); i++ {
		h = (h ^ uint64(site[i])) * prime
	}
	h = (h ^ 0xff) * prime // separator: ("ab","c") != ("a","bc")
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime
	}
	z := h ^ seed
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Record is one fired injection, logged for replay.
type Record struct {
	Site Site
	Key  string
	Spec Spec
}

func (r Record) String() string {
	return fmt.Sprintf("chaos: %s fired at key %q (replay: -chaos %s)", r.Site, r.Key, r.Spec)
}

// maxRecords caps the fired-event log so a high-rate sweep cannot grow
// memory without bound; Fired reports the true count regardless.
const maxRecords = 4096

// Global registry state. Sites deep in the pipeline (the engines, the
// optimizer) have no configuration path of their own, so injection is
// process-global: Enable installs a spec, Disable removes it. The
// enabled flag is the only state the zero-fault hot path reads.
var (
	enabled atomic.Bool
	mu      sync.Mutex
	spec    Spec
	records []Record
	fired   atomic.Uint64
)

// Active reports whether injection is enabled. It is the single atomic
// check every site performs before any other work; when false, sites do
// nothing else.
func Active() bool { return enabled.Load() }

// Enable installs spec and turns injection on. Tests must pair it with
// a deferred Disable and must not run in parallel with chaos-sensitive
// tests: the registry is process-global.
func Enable(s Spec) {
	mu.Lock()
	spec = s
	records = nil
	fired.Store(0)
	mu.Unlock()
	enabled.Store(s.Rate > 0)
}

// Disable turns injection off. Fired records remain readable until the
// next Enable.
func Disable() { enabled.Store(false) }

// CurrentSpec returns the installed spec and whether injection is on.
func CurrentSpec() (Spec, bool) {
	if !Active() {
		return Spec{}, false
	}
	mu.Lock()
	defer mu.Unlock()
	return spec, true
}

// SpecString returns the canonical replay spec of the installed
// configuration, or "" when injection is off. Quarantine errors embed it
// so any logged failure is replayable from the log line alone.
func SpecString() string {
	s, ok := CurrentSpec()
	if !ok {
		return ""
	}
	return s.String()
}

// Fire reports whether site faults for key under the installed spec,
// and logs the event when it does. The zero-fault fast path is one
// atomic load.
func Fire(site Site, key string) bool {
	if !Active() {
		return false
	}
	mu.Lock()
	s := spec
	mu.Unlock()
	if !Decide(s, site, key) {
		return false
	}
	if fired.Add(1) <= maxRecords {
		mu.Lock()
		records = append(records, Record{Site: site, Key: key, Spec: s})
		mu.Unlock()
	}
	return true
}

// Records returns the injections fired since the last Enable (capped at
// an internal bound; see Fired for the uncapped count).
func Records() []Record {
	mu.Lock()
	defer mu.Unlock()
	return append([]Record(nil), records...)
}

// Fired returns how many injections have fired since the last Enable.
func Fired() uint64 { return fired.Load() }

// drillMu serializes scoped drills: injection is process-global, so at
// most one request-scoped arming may be live at a time. A plain Mutex
// with TryLock (rather than blocking) lets a service answer "drill
// already in progress" instead of queueing chaos behind chaos.
var drillMu sync.Mutex

// ErrDrillBusy reports that another scoped drill holds the registry.
var ErrDrillBusy = errors.New("chaos: a drill is already in progress")

// AcquireDrill arms the registry with spec for the scope of one request
// and returns a release function that disarms it. It fails with
// ErrDrillBusy when another drill holds the registry (drills never
// queue) and with an error when injection is already enabled globally
// (a process started with -chaos owns its spec for its lifetime).
//
// Scoping is temporal, not spatial: while a drill is live, every
// injection site in the process is armed, so concurrent organic
// requests may observe injected faults too — and must heal through the
// same supervision machinery. Fired records are reset on acquire, so
// Fired()/Records() read back exactly what this drill provoked (plus
// any collateral hits on concurrent traffic).
func AcquireDrill(s Spec) (release func(), err error) {
	if !drillMu.TryLock() {
		return nil, ErrDrillBusy
	}
	if Active() {
		drillMu.Unlock()
		return nil, errors.New("chaos: injection already enabled globally; refusing scoped drill")
	}
	Enable(s)
	var once sync.Once
	return func() {
		once.Do(func() {
			Disable()
			drillMu.Unlock()
		})
	}, nil
}

// ErrInjected is the sentinel matched by errors.Is for every fault this
// package injects as an error value.
var ErrInjected = errors.New("chaos: injected fault")

// InjectedError is a typed, site-tagged injected failure. The pipeline
// wraps it with the usual stage prefixes ("parse:", "analyze:"), so
// errors.Is(err, chaos.ErrInjected) identifies an injected fault through
// the whole wrap chain.
type InjectedError struct {
	Site Site
	Key  string
	Spec Spec
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("chaos: injected fault at %s (key %q, replay: -chaos %s)", e.Site, e.Key, e.Spec)
}

// Is makes errors.Is(err, chaos.ErrInjected) match any InjectedError.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// InjectError returns a typed *InjectedError when site fires for key,
// nil otherwise. Error-amplification sites (parser, sem) return it as
// their failure.
func InjectError(site Site, key string) error {
	if !Fire(site, key) {
		return nil
	}
	s, _ := CurrentSpec()
	return &InjectedError{Site: site, Key: key, Spec: s}
}

// PanicValue is the value panic sites throw. It carries the "chaos:
// injected" marker so contained panics remain recognizable as injected
// (guard.InternalError stringifies the recovered value).
func PanicValue(site Site, key string) string {
	return fmt.Sprintf("chaos: injected panic at %s (key %q, replay: -chaos %s)", site, key, SpecString())
}

// InjectedMessage reports whether an error's text carries the injected
// marker. Faults routed through diagnostic lists (the lexer's ErrorList)
// or contained panics (guard.InternalError) lose the *InjectedError
// type; their message keeps the marker.
func InjectedMessage(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrInjected) {
		return true
	}
	return strings.Contains(err.Error(), "chaos: injected")
}

// SourceKey derives a stable injection key from source text: sites that
// see only the raw source (lexer, parser, sem) key their decision on it
// so the same program faults identically everywhere.
func SourceKey(src string) string {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(src); i++ {
		h = (h ^ uint64(src[i])) * prime
	}
	return strconv.FormatUint(h, 16)
}

// AttemptKey keys per-attempt worker faults: retrying a job re-rolls
// its fate, so a seed can be chosen where attempt 0 dies and attempt 1
// survives (self-healing) or where every attempt dies (quarantine).
func AttemptKey(job string, attempt int) string {
	return job + "#" + strconv.Itoa(attempt)
}
