package chaos

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range []Spec{
		{Seed: 42, Rate: 0.05},
		{Seed: 7, Rate: 1, Site: SiteWorkerKill},
		{Seed: 0, Rate: 0.125, Site: SiteVMPanic},
	} {
		got, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec.String(), err)
		}
		if got != spec {
			t.Errorf("round trip %q: got %+v, want %+v", spec.String(), got, spec)
		}
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, text := range []string{
		"", "42", "x:0.5", "42:nope", "42:-0.1", "42:1.5", "42:NaN",
		"42:0.5:no.such.site",
	} {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want failure", text)
		}
	}
}

func TestDecideDeterministic(t *testing.T) {
	spec := Spec{Seed: 99, Rate: 0.5}
	for _, site := range Sites {
		for k := 0; k < 50; k++ {
			key := fmt.Sprintf("key-%d", k)
			a := Decide(spec, site, key)
			for i := 0; i < 3; i++ {
				if b := Decide(spec, site, key); b != a {
					t.Fatalf("Decide(%v, %s, %s) flapped: %v then %v", spec, site, key, a, b)
				}
			}
		}
	}
}

func TestDecideRateExtremes(t *testing.T) {
	for k := 0; k < 100; k++ {
		key := fmt.Sprintf("key-%d", k)
		if Decide(Spec{Seed: 1, Rate: 0}, SiteOptPanic, key) {
			t.Fatalf("rate 0 fired for %s", key)
		}
		if !Decide(Spec{Seed: 1, Rate: 1}, SiteOptPanic, key) {
			t.Fatalf("rate 1 did not fire for %s", key)
		}
	}
}

func TestDecideRateIsRoughlyCalibrated(t *testing.T) {
	spec := Spec{Seed: 1234, Rate: 0.2}
	fired := 0
	const n = 5000
	for k := 0; k < n; k++ {
		if Decide(spec, SiteTreeBudget, fmt.Sprintf("key-%d", k)) {
			fired++
		}
	}
	got := float64(fired) / n
	if math.Abs(got-spec.Rate) > 0.05 {
		t.Errorf("empirical rate %.3f, want ~%.2f", got, spec.Rate)
	}
}

func TestSiteFilter(t *testing.T) {
	spec := Spec{Seed: 5, Rate: 1, Site: SiteWorkerKill}
	if !Decide(spec, SiteWorkerKill, "j#0") {
		t.Error("filtered-in site did not fire at rate 1")
	}
	for _, site := range Sites {
		if site == SiteWorkerKill {
			continue
		}
		if Decide(spec, site, "j#0") {
			t.Errorf("site filter %s leaked into %s", spec.Site, site)
		}
	}
}

func TestMultiSiteSpec(t *testing.T) {
	armed := []Site{SiteFleetKill, SiteFleetHeartbeatDrop, SiteScrubCorrupt}
	text := "11:1:fleet.worker.kill,fleet.heartbeat.drop,progcache.scrub.corrupt"
	spec, err := ParseSpec(text)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", text, err)
	}
	if got := spec.String(); got != text {
		t.Errorf("multi-site spec did not round-trip: got %q, want %q", got, text)
	}
	for _, site := range armed {
		if !Decide(spec, site, "j#0") {
			t.Errorf("armed site %s did not fire at rate 1", site)
		}
	}
	for _, site := range Sites {
		if site == armed[0] || site == armed[1] || site == armed[2] {
			continue
		}
		if Decide(spec, site, "j#0") {
			t.Errorf("multi-site filter leaked into %s", site)
		}
	}
	// A list with one bad entry is rejected wholesale.
	if _, err := ParseSpec("11:1:fleet.worker.kill,no.such.site"); err == nil {
		t.Error("ParseSpec accepted a list containing an unknown site")
	}
}

func TestSitesDistinguished(t *testing.T) {
	// Different sites with the same key must roll independent dice:
	// at rate 0.5 across 14+ sites, at least one pair must disagree.
	spec := Spec{Seed: 3, Rate: 0.5}
	seen := map[bool]bool{}
	for _, site := range Sites {
		seen[Decide(spec, site, "same-key")] = true
	}
	if len(seen) != 2 {
		t.Errorf("all %d sites rolled the same fate for one key; sites are not independent", len(Sites))
	}
}

func TestFireDisabledIsInert(t *testing.T) {
	Disable()
	if Active() {
		t.Fatal("Active() after Disable")
	}
	if Fire(SiteOptPanic, "k") {
		t.Error("Fire fired while disabled")
	}
	if err := InjectError(SiteParseError, "k"); err != nil {
		t.Errorf("InjectError returned %v while disabled", err)
	}
	if s := SpecString(); s != "" {
		t.Errorf("SpecString() = %q while disabled, want empty", s)
	}
}

func TestFireRecordsAndReplays(t *testing.T) {
	spec := Spec{Seed: 11, Rate: 1, Site: SiteOptPanic}
	Enable(spec)
	defer Disable()

	if !Fire(SiteOptPanic, "main") {
		t.Fatal("rate-1 site did not fire")
	}
	if Fire(SiteVMPanic, "main") {
		t.Fatal("site filter ignored")
	}
	recs := Records()
	if len(recs) != 1 || recs[0].Site != SiteOptPanic || recs[0].Key != "main" {
		t.Fatalf("Records() = %+v, want one optimize.panic/main record", recs)
	}
	if Fired() != 1 {
		t.Errorf("Fired() = %d, want 1", Fired())
	}
	// The logged spec replays: parsing the record's spec string yields
	// the installed spec, and the decision re-fires.
	replay, err := ParseSpec(recs[0].Spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if replay != spec || !Decide(replay, recs[0].Site, recs[0].Key) {
		t.Errorf("record %+v does not replay under spec %v", recs[0], replay)
	}
}

func TestInjectErrorTyped(t *testing.T) {
	Enable(Spec{Seed: 1, Rate: 1, Site: SiteSemError})
	defer Disable()
	err := InjectError(SiteSemError, "k")
	if err == nil {
		t.Fatal("no injected error at rate 1")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("errors.Is(%v, ErrInjected) = false", err)
	}
	wrapped := fmt.Errorf("analyze: %w", err)
	if !errors.Is(wrapped, ErrInjected) {
		t.Errorf("wrap chain lost ErrInjected: %v", wrapped)
	}
	if !InjectedMessage(wrapped) {
		t.Errorf("InjectedMessage(%v) = false", wrapped)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != SiteSemError {
		t.Errorf("errors.As site = %+v, want sem.error", ie)
	}
}

func TestEnableResetsRecords(t *testing.T) {
	Enable(Spec{Seed: 1, Rate: 1})
	Fire(SiteOptPanic, "x")
	Enable(Spec{Seed: 2, Rate: 1})
	defer Disable()
	if n := len(Records()); n != 0 {
		t.Errorf("Records() after re-Enable has %d entries, want 0", n)
	}
	if Fired() != 0 {
		t.Errorf("Fired() after re-Enable = %d, want 0", Fired())
	}
}

func TestSourceKeyStable(t *testing.T) {
	a, b := SourceKey("program p\nend\n"), SourceKey("program p\nend\n")
	if a != b {
		t.Errorf("SourceKey not stable: %q vs %q", a, b)
	}
	if SourceKey("x") == SourceKey("y") {
		t.Error("distinct sources share a key")
	}
}

func BenchmarkActiveDisabled(b *testing.B) {
	Disable()
	for i := 0; i < b.N; i++ {
		if Fire(SiteTreeBudget, "") {
			b.Fatal("fired while disabled")
		}
	}
}
