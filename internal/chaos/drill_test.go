package chaos

import (
	"errors"
	"testing"
)

// TestAcquireDrill covers the scoped-drill arming protocol nascentd's
// POST /drill uses: exclusive acquisition, registry arming for the
// drill's scope, idempotent release, and refusal to stack on top of a
// process-global -chaos spec.
func TestAcquireDrill(t *testing.T) {
	if Active() {
		t.Fatal("chaos registry already enabled; drill test needs it off")
	}
	spec := Spec{Seed: 7, Rate: 1, Site: SiteWorkerKill}

	release, err := AcquireDrill(spec)
	if err != nil {
		t.Fatalf("AcquireDrill: %v", err)
	}
	got, ok := CurrentSpec()
	if !ok || got != spec {
		t.Fatalf("CurrentSpec() = %v, %v; want %v armed", got, ok, spec)
	}

	// A second drill must be refused, not queued.
	if _, err := AcquireDrill(Spec{Seed: 8, Rate: 1}); !errors.Is(err, ErrDrillBusy) {
		t.Fatalf("concurrent AcquireDrill error = %v, want ErrDrillBusy", err)
	}

	release()
	if Active() {
		t.Fatal("registry still armed after release")
	}
	release() // idempotent: a double release must not unlock a stranger's drill

	// After release the registry is free again.
	release2, err := AcquireDrill(spec)
	if err != nil {
		t.Fatalf("AcquireDrill after release: %v", err)
	}
	release2()
}

// TestAcquireDrillRefusesGlobalChaos: a process started with -chaos
// owns its spec for its lifetime; drills must not silently replace it.
func TestAcquireDrillRefusesGlobalChaos(t *testing.T) {
	Enable(Spec{Seed: 1, Rate: 0.5})
	defer Disable()
	if _, err := AcquireDrill(Spec{Seed: 2, Rate: 1}); err == nil {
		t.Fatal("AcquireDrill succeeded while global injection is enabled")
	} else if errors.Is(err, ErrDrillBusy) {
		t.Fatalf("got ErrDrillBusy, want the global-injection refusal: %v", err)
	}
}
