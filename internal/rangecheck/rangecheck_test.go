package rangecheck

import (
	"strings"
	"testing"

	"nascent/internal/ir"
)

func vars(names ...string) (*ir.Program, map[string]*ir.Var) {
	p := &ir.Program{}
	f := &ir.Func{Name: "t"}
	p.RegisterFunc(f)
	m := make(map[string]*ir.Var)
	for _, n := range names {
		m[n] = p.NewVar(n, ir.Int, false, false)
	}
	return p, m
}

func term(v *ir.Var, coef int64) ir.CheckTerm {
	return ir.CheckTerm{Coef: coef, Atom: &ir.VarRef{Var: v}}
}

func TestInternSharesFamilies(t *testing.T) {
	_, vs := vars("n")
	r := NewRegistry(ImplyFull)
	f1 := r.Intern([]ir.CheckTerm{term(vs["n"], 2)}, 10)
	f2 := r.Intern([]ir.CheckTerm{term(vs["n"], 2)}, 11)
	if f1 != f2 {
		t.Error("same terms, different consts must share a family under ImplyFull")
	}
	f3 := r.Intern([]ir.CheckTerm{term(vs["n"], 3)}, 10)
	if f3 == f1 {
		t.Error("different coefficients must be different families")
	}
}

func TestInternExactModeSplitsByConst(t *testing.T) {
	_, vs := vars("n")
	for _, mode := range []Mode{ImplyNone, ImplyCross} {
		r := NewRegistry(mode)
		f1 := r.Intern([]ir.CheckTerm{term(vs["n"], 2)}, 10)
		f2 := r.Intern([]ir.CheckTerm{term(vs["n"], 2)}, 11)
		if f1 == f2 {
			t.Errorf("%v: constants must split families", mode)
		}
		if f1.ExactConst != 10 || f2.ExactConst != 11 {
			t.Errorf("%v: exact consts %d,%d", mode, f1.ExactConst, f2.ExactConst)
		}
	}
}

func TestFamilyKillSets(t *testing.T) {
	p, vs := vars("n", "g")
	vs["g"].Global = true
	arr := p.NewArray("b", ir.Int, []ir.Bounds{{Lo: 1, Hi: 5}}, true)
	load := &ir.Load{Arr: arr, Idx: []ir.Expr{&ir.VarRef{Var: vs["n"]}}}
	r := NewRegistry(ImplyFull)
	f := r.Intern([]ir.CheckTerm{
		term(vs["n"], 1),
		{Coef: 1, Atom: load},
		term(vs["g"], -1),
	}, 7)
	if !f.KillVars[vs["n"].ID] || !f.KillVars[vs["g"].ID] {
		t.Error("kill vars incomplete")
	}
	if !f.KillArrays[arr.ID] {
		t.Error("kill arrays incomplete")
	}
	if !f.KilledByCall {
		t.Error("family reading globals must be killed by calls")
	}
}

func TestFamilyNotKilledByCallWhenLocal(t *testing.T) {
	_, vs := vars("n")
	r := NewRegistry(ImplyFull)
	f := r.Intern([]ir.CheckTerm{term(vs["n"], 1)}, 7)
	if f.KilledByCall {
		t.Error("local-only family must survive calls")
	}
}

// TestFigure4 reproduces the paper's Figure 4: families F3 (over n) and
// F4 (over m) with an edge of weight 4 from the discovered implication
// Check(n ≤ 6) ⇒ Check(m ≤ 10).
func TestFigure4EdgeWeights(t *testing.T) {
	_, vs := vars("n", "m")
	r := NewRegistry(ImplyFull)
	f3 := r.Intern([]ir.CheckTerm{term(vs["n"], 1)}, 6)
	f4 := r.Intern([]ir.CheckTerm{term(vs["m"], 1)}, 10)
	g := NewCIG(r)
	g.AddEdge(f3, f4, 4)

	// Check (n <= 1) is as strong as Check (m <= 7): 1+4 = 5 <= 7.
	if !g.AsStrong(f3, 1, f4, 7) {
		t.Error("n<=1 should imply m<=7")
	}
	// But not Check (m <= 3): 1+4 = 5 > 3.
	if g.AsStrong(f3, 1, f4, 3) {
		t.Error("n<=1 must not imply m<=3")
	}
	// Within family: n<=1 implies n<=6.
	if !g.AsStrong(f3, 1, f3, 6) {
		t.Error("within-family implication failed")
	}
	if g.AsStrong(f3, 6, f3, 1) {
		t.Error("weaker check must not imply stronger")
	}
}

func TestCIGEdgeMinWeight(t *testing.T) {
	_, vs := vars("n", "m")
	r := NewRegistry(ImplyFull)
	f1 := r.Intern([]ir.CheckTerm{term(vs["n"], 1)}, 0)
	f2 := r.Intern([]ir.CheckTerm{term(vs["m"], 1)}, 0)
	g := NewCIG(r)
	g.AddEdge(f1, f2, 7)
	g.AddEdge(f1, f2, 4) // min kept (paper §3.1)
	g.AddEdge(f1, f2, 9)
	if len(g.Out(f1)) != 1 || g.Out(f1)[0].Weight != 4 {
		t.Errorf("edges = %+v, want single weight-4 edge", g.Out(f1))
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestCIGTransitive(t *testing.T) {
	_, vs := vars("a", "b", "c")
	r := NewRegistry(ImplyFull)
	fa := r.Intern([]ir.CheckTerm{term(vs["a"], 1)}, 0)
	fb := r.Intern([]ir.CheckTerm{term(vs["b"], 1)}, 0)
	fc := r.Intern([]ir.CheckTerm{term(vs["c"], 1)}, 0)
	g := NewCIG(r)
	g.AddEdge(fa, fb, 1)
	g.AddEdge(fb, fc, 2)
	if !g.AsStrong(fa, 5, fc, 8) {
		t.Error("a<=5 -> b<=6 -> c<=8 should hold transitively")
	}
	if g.AsStrong(fa, 5, fc, 7) {
		t.Error("a<=5 must not imply c<=7")
	}
}

func TestAsStrongModeGating(t *testing.T) {
	_, vs := vars("n", "m")
	r := NewRegistry(ImplyNone)
	f1 := r.Intern([]ir.CheckTerm{term(vs["n"], 1)}, 5)
	f2 := r.Intern([]ir.CheckTerm{term(vs["m"], 1)}, 9)
	g := NewCIG(r)
	g.AddEdge(f1, f2, 4)
	// ImplyNone: no implications at all (exact identity only).
	if g.AsStrong(f1, 5, f2, 9) {
		t.Error("ImplyNone must disable cross-family edges")
	}
	if !g.AsStrong(f1, 5, f1, 5) {
		t.Error("a check is always as strong as itself")
	}

	r2 := NewRegistry(ImplyCross)
	f1c := r2.Intern([]ir.CheckTerm{term(vs["n"], 1)}, 5)
	f2c := r2.Intern([]ir.CheckTerm{term(vs["m"], 1)}, 9)
	g2 := NewCIG(r2)
	g2.AddEdge(f1c, f2c, 4)
	if !g2.AsStrong(f1c, 5, f2c, 9) {
		t.Error("ImplyCross must keep cross-family edges")
	}
}

func TestModePredicates(t *testing.T) {
	if !ImplyFull.WithinFamily() || !ImplyFull.CrossFamily() {
		t.Error("full mode predicates")
	}
	if ImplyNone.WithinFamily() || ImplyNone.CrossFamily() {
		t.Error("none mode predicates")
	}
	if ImplyCross.WithinFamily() || !ImplyCross.CrossFamily() {
		t.Error("cross mode predicates")
	}
}

func TestCIGDump(t *testing.T) {
	_, vs := vars("n", "m")
	r := NewRegistry(ImplyFull)
	f3 := r.Intern([]ir.CheckTerm{term(vs["n"], 1)}, 6)
	f4 := r.Intern([]ir.CheckTerm{term(vs["m"], 1)}, 10)
	g := NewCIG(r)
	g.AddEdge(f3, f4, 4)
	out := g.Dump()
	for _, want := range []string{"F0: n", "F1: m", "-> F1 (weight 4)"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}
