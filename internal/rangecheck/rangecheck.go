// Package rangecheck defines check families and the Check Implication
// Graph (CIG) of paper §3.1.
//
// A family is the set of range checks sharing a canonical
// range-expression; within a family, a smaller range-constant is a
// stronger check. The CIG has one node per family and weighted edges:
// an edge (F → G, w) means Check(F ≤ k) implies Check(G ≤ k + w) for
// every k (paper Figure 4). Implications within a family need no edges —
// they follow from the constant ordering.
//
// The implication Mode reproduces the paper's Table 3 ablation: with
// ImplyNone, every (range-expression, constant) pair is its own family,
// so no check implies any other; with ImplyCross, within-family
// implications are disabled but cross-family edges (notably the
// preheader → loop-body implications of §3.3) are kept.
package rangecheck

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"nascent/internal/ir"
)

// Mode selects which check implications the optimizer may exploit.
type Mode int

// Implication modes (Table 3).
const (
	// ImplyFull uses all implications, within and across families.
	ImplyFull Mode = iota
	// ImplyNone uses no implications between distinct checks.
	ImplyNone
	// ImplyCross disables within-family implications but keeps
	// cross-family ones (paper's NI′/SE′ use ImplyNone; LLS′ uses
	// ImplyCross).
	ImplyCross
)

func (m Mode) String() string {
	switch m {
	case ImplyFull:
		return "full"
	case ImplyNone:
		return "none"
	case ImplyCross:
		return "cross-family-only"
	}
	return "?"
}

// WithinFamily reports whether within-family implications are usable.
func (m Mode) WithinFamily() bool { return m == ImplyFull }

// CrossFamily reports whether cross-family implications are usable.
func (m Mode) CrossFamily() bool { return m == ImplyFull || m == ImplyCross }

// None is the lattice value "no check available/anticipatable".
const None int64 = math.MaxInt64

// AllChecks is the lattice top "every check available" used to initialize
// optimistic dataflow iteration.
const AllChecks int64 = math.MinInt64

// Family is one CIG node.
type Family struct {
	Index int
	Key   string
	// Terms is a representative copy of the canonical range-expression.
	Terms []ir.CheckTerm
	// ExactConst is the single constant of the family under ImplyNone /
	// ImplyCross keying (where the constant is part of the identity);
	// unused (0) under ImplyFull.
	ExactConst int64
	// Kill sets: definitions of these variables / stores to these arrays
	// invalidate facts about the family (paper §3.2).
	KillVars   map[int]bool
	KillArrays map[int]bool
	// KilledByCall: the range-expression reads a global scalar or loads a
	// global array, either of which a subroutine call may modify.
	KilledByCall bool
}

// String renders the family as its range-expression.
func (f *Family) String() string { return ir.TermsString(f.Terms) }

// Registry interns the families of one function.
type Registry struct {
	Mode     Mode
	Families []*Family
	byKey    map[string]*Family
}

// NewRegistry creates an empty registry for the given mode.
func NewRegistry(mode Mode) *Registry {
	return &Registry{Mode: mode, byKey: make(map[string]*Family)}
}

// keyFor computes the registry key of a check: the canonical family key,
// extended with the constant when within-family implications are off.
func (r *Registry) keyFor(terms []ir.CheckTerm, konst int64) string {
	k := ir.FamilyKey(terms)
	if !r.Mode.WithinFamily() {
		return fmt.Sprintf("%s#%d", k, konst)
	}
	return k
}

// Intern returns the family for the given canonical terms (and constant,
// relevant under ImplyNone/ImplyCross), creating it on first use.
func (r *Registry) Intern(terms []ir.CheckTerm, konst int64) *Family {
	key := r.keyFor(terms, konst)
	if f, ok := r.byKey[key]; ok {
		return f
	}
	f := &Family{
		Index:      len(r.Families),
		Key:        key,
		Terms:      cloneTerms(terms),
		KillVars:   make(map[int]bool),
		KillArrays: make(map[int]bool),
	}
	if !r.Mode.WithinFamily() {
		f.ExactConst = konst
	}
	vars := make(map[int]bool)
	arrs := make(map[int]bool)
	globalLoad := false
	globalVar := false
	for _, t := range terms {
		ir.WalkExpr(t.Atom, func(x ir.Expr) {
			switch x := x.(type) {
			case *ir.VarRef:
				vars[x.Var.ID] = true
				if x.Var.Global {
					globalVar = true
				}
			case *ir.Load:
				arrs[x.Arr.ID] = true
				if x.Arr.Global {
					globalLoad = true
				}
			}
		})
	}
	f.KillVars = vars
	f.KillArrays = arrs
	f.KilledByCall = globalVar || globalLoad
	r.byKey[key] = f
	r.Families = append(r.Families, f)
	return f
}

// Lookup returns the family for terms/const if it exists.
func (r *Registry) Lookup(terms []ir.CheckTerm, konst int64) *Family {
	return r.byKey[r.keyFor(terms, konst)]
}

// FamilyOf interns the family of a check statement.
func (r *Registry) FamilyOf(c *ir.CheckStmt) *Family {
	return r.Intern(c.Terms, c.Const)
}

func cloneTerms(terms []ir.CheckTerm) []ir.CheckTerm {
	out := make([]ir.CheckTerm, len(terms))
	for i, t := range terms {
		out[i] = ir.CheckTerm{Coef: t.Coef, Atom: ir.CloneExpr(t.Atom)}
	}
	return out
}

// ---------------------------------------------------------------------------
// Check implication graph

// Edge is one weighted CIG edge: Check(From ≤ k) ⇒ Check(To ≤ k+Weight).
type Edge struct {
	From, To *Family
	Weight   int64
}

// CIG is the check implication graph: families plus weighted cross-family
// implication edges. Within-family implications are implicit in the
// constant ordering (when the mode allows them).
type CIG struct {
	Registry *Registry
	out      map[*Family][]*Edge
	numEdges int
}

// NewCIG creates an empty CIG over the registry.
func NewCIG(r *Registry) *CIG {
	return &CIG{Registry: r, out: make(map[*Family][]*Edge)}
}

// AddEdge records that Check(from ≤ k) implies Check(to ≤ k+w). If the
// edge exists, the minimum weight is kept (paper §3.1).
func (g *CIG) AddEdge(from, to *Family, w int64) {
	for _, e := range g.out[from] {
		if e.To == to {
			if w < e.Weight {
				e.Weight = w
			}
			return
		}
	}
	g.out[from] = append(g.out[from], &Edge{From: from, To: to, Weight: w})
	g.numEdges++
}

// Out returns the edges leaving family f.
func (g *CIG) Out(f *Family) []*Edge { return g.out[f] }

// NumEdges returns the number of distinct cross-family edges.
func (g *CIG) NumEdges() int { return g.numEdges }

// AsStrong reports whether Check(f ≤ cf) is as strong as Check(t ≤ ct),
// following within-family ordering and up to one cross-family edge hop
// plus transitive within-family ordering, honoring the mode. Multi-hop
// paths are searched breadth-first (the graph is tiny).
func (g *CIG) AsStrong(f *Family, cf int64, t *Family, ct int64) bool {
	type node struct {
		fam *Family
		c   int64
	}
	reached := func(n node) bool {
		if n.fam != t {
			return false
		}
		if g.Registry.Mode.WithinFamily() {
			return n.c <= ct
		}
		return n.c == ct
	}
	start := node{f, cf}
	if reached(start) {
		return true
	}
	if !g.Registry.Mode.CrossFamily() {
		return false
	}
	seen := map[*Family]int64{f: cf}
	queue := []node{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.out[n.fam] {
			c := n.c + e.Weight
			if prev, ok := seen[e.To]; ok && prev <= c {
				continue
			}
			seen[e.To] = c
			nn := node{e.To, c}
			if reached(nn) {
				return true
			}
			queue = append(queue, nn)
		}
	}
	return false
}

// Dump renders the CIG for debugging and the Figure 3/4 examples.
func (g *CIG) Dump() string {
	var b strings.Builder
	fams := append([]*Family{}, g.Registry.Families...)
	sort.Slice(fams, func(i, j int) bool { return fams[i].Index < fams[j].Index })
	for _, f := range fams {
		fmt.Fprintf(&b, "F%d: %s\n", f.Index, f)
		for _, e := range g.out[f] {
			fmt.Fprintf(&b, "  -> F%d (weight %d)\n", e.To.Index, e.Weight)
		}
	}
	return b.String()
}
