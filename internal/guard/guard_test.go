package guard

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestRecoverConvertsPanic(t *testing.T) {
	f := func() (err error) {
		defer Recover("optimize", "daxpy", &err)
		panic("index out of range")
	}
	err := f()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *InternalError", err)
	}
	if ie.Stage != "optimize" || ie.Fn != "daxpy" || ie.Recovered != "index out of range" {
		t.Errorf("got %+v", ie)
	}
	if len(ie.Stack) == 0 {
		t.Error("no stack captured")
	}
	if msg := ie.Error(); !strings.Contains(msg, "optimize (daxpy)") {
		t.Errorf("Error() = %q, want stage and function named", msg)
	}
}

func TestRecoverNoPanicLeavesErrorAlone(t *testing.T) {
	f := func() (err error) {
		defer Recover("run", "", &err)
		return nil
	}
	if err := f(); err != nil {
		t.Errorf("err = %v, want nil", err)
	}
}

func TestUnwrapExposesPanickedError(t *testing.T) {
	sentinel := errors.New("inner fault")
	f := func() (err error) {
		defer Recover("lower", "", &err)
		panic(fmt.Errorf("wrapped: %w", sentinel))
	}
	if err := f(); !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want to unwrap to the panicked error", err)
	}
}
