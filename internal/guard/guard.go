// Package guard converts internal invariant violations (panics) into
// typed, stage-tagged errors so that no input — however malformed — can
// crash a process embedding the compiler or interpreter.
//
// Every pipeline entry point (compile, optimize, run) installs a
// deferred Recover; a panic escaping any stage surfaces to the caller as
// an *InternalError carrying the stage name, the function being
// processed (when known), the recovered value, and the stack at the
// point of recovery. Callers test for the class with
// errors.Is(err, guard.ErrInternal) and extract details with errors.As.
package guard

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrInternal is the sentinel matched by errors.Is for every recovered
// internal invariant violation.
var ErrInternal = errors.New("internal invariant violation")

// InternalError is a panic recovered at a pipeline stage boundary.
type InternalError struct {
	// Stage is the pipeline stage that panicked: "parse", "analyze",
	// "lower", "optimize", or "run".
	Stage string
	// Fn names the function being processed when known (else "").
	Fn string
	// Recovered is the value the stage panicked with.
	Recovered any
	// Stack is the goroutine stack captured at the recovery point.
	Stack []byte
}

func (e *InternalError) Error() string {
	if e.Fn != "" {
		return fmt.Sprintf("internal error in %s (%s): %v", e.Stage, e.Fn, e.Recovered)
	}
	return fmt.Sprintf("internal error in %s: %v", e.Stage, e.Recovered)
}

// Is makes errors.Is(err, guard.ErrInternal) match any InternalError.
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// Unwrap exposes a wrapped error when the stage panicked with one.
func (e *InternalError) Unwrap() error {
	if err, ok := e.Recovered.(error); ok {
		return err
	}
	return nil
}

// Recover converts an in-flight panic into an *InternalError stored in
// *errp. Use as:
//
//	defer guard.Recover("optimize", f.Name, &err)
//
// It must be deferred directly (not called from another deferred
// function's callee) so recover() can see the panic.
func Recover(stage, fn string, errp *error) {
	if r := recover(); r != nil {
		*errp = &InternalError{Stage: stage, Fn: fn, Recovered: r, Stack: debug.Stack()}
	}
}
