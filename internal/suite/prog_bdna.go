package suite

// bdna models the Perfect Club nucleic-acid molecular dynamics code:
// a cutoff-based neighbor list is rebuilt periodically (pair loop with a
// conditional append) and forces are accumulated through the list
// (indirect subscripts a(j) with j loaded from the list — checks no
// placement scheme can hoist, the reason bdna's LLS percentage stays
// below 99% in the paper).
const srcBdna = `program bdna
  parameter na = 44
  parameter mxnb = 18
  parameter nsteps = 3
  real x(na), y(na), z(na)
  real fx(na), fy(na), fz(na)
  integer nbcnt(na), nblist(na, mxnb)
  real cutoff2, fsum
  integer istep, i

  do i = 1, na
    x(i) = float(mod(7 * i, na)) / float(na)
    y(i) = float(mod(3 * i, na)) / float(na)
    z(i) = float(mod(5 * i, na)) / float(na)
  enddo
  cutoff2 = 0.16

  do istep = 1, nsteps
    call neighbors()
    call forces()
  enddo

  fsum = 0.0
  do i = 1, na
    fsum = fsum + fx(i) * fx(i) + fy(i) * fy(i) + fz(i) * fz(i)
  enddo
  print fsum
end

subroutine neighbors()
  integer i, j
  real dx, dy, dz, r2
  do i = 1, na
    nbcnt(i) = 0
  enddo
  do i = 1, na
    do j = i + 1, na
      dx = x(i) - x(j)
      dy = y(i) - y(j)
      dz = z(i) - z(j)
      r2 = dx * dx + dy * dy + dz * dz
      if (r2 < cutoff2) then
        if (nbcnt(i) < mxnb) then
          nbcnt(i) = nbcnt(i) + 1
          nblist(i, nbcnt(i)) = j
        endif
      endif
    enddo
  enddo
end

subroutine forces()
  integer i, j, k, kmax
  real dx, dy, dz, r2, s
  do i = 1, na
    fx(i) = 0.0
    fy(i) = 0.0
    fz(i) = 0.0
  enddo
  do i = 1, na
    kmax = nbcnt(i)
    do k = 1, kmax
      j = nblist(i, k)
      dx = x(i) - x(j)
      dy = y(i) - y(j)
      dz = z(i) - z(j)
      r2 = dx * dx + dy * dy + dz * dz + 0.01
      s = 1.0 / (r2 * r2)
      fx(i) = fx(i) + s * dx
      fy(i) = fy(i) + s * dy
      fz(i) = fz(i) + s * dz
      fx(j) = fx(j) - s * dx
      fy(j) = fy(j) - s * dy
      fz(j) = fz(j) - s * dz
    enddo
  enddo
end
`
