package suite

// qcd models the Perfect Club lattice gauge theory code: a 4-D lattice
// flattened into one dimension, with link variables per site and
// direction. Neighbor sites are computed with modular wraparound —
// subscripts involving mod are opaque to the linear-form machinery, so
// their checks survive every placement scheme (the residual the paper
// sees on qcd: LLS leaves ~3%). A staple-sum sweep and a normalization
// sweep alternate.
const srcQcd = `program qcd
  parameter nx = 6
  parameter nt = 6
  parameter nsite = 36
  parameter nsweep = 3
  real lnk(nsite, 4), stpl(nsite, 4)
  real beta, action
  integer isweep, i, mu

  do i = 1, nsite
    do mu = 1, 4
      lnk(i, mu) = float(mod(i * mu, 7) + 1) / 8.0
    enddo
  enddo
  beta = 2.5

  do isweep = 1, nsweep
    call staples()
    call update()
  enddo

  action = 0.0
  do i = 1, nsite
    do mu = 1, 4
      action = action + lnk(i, mu) * stpl(i, mu)
    enddo
  enddo
  print action
end

subroutine staples()
  integer i, mu, ix, it, ifwd, ibwd
  do i = 1, nsite
    ! decompose the flattened site index and wrap neighbors
    ix = mod(i - 1, nx)
    it = (i - 1) / nx
    ifwd = it * nx + mod(ix + 1, nx) + 1
    ibwd = it * nx + mod(ix + nx - 1, nx) + 1
    do mu = 1, 4
      ! plaquette-like products reuse each link twice per direction
      stpl(i, mu) = lnk(ifwd, mu) * lnk(ibwd, mu) + 0.5 * lnk(i, mu) + 0.1 * lnk(ifwd, mu) * lnk(i, mu) - 0.05 * lnk(ibwd, mu)
    enddo
  enddo
end

subroutine update()
  integer i, mu, jt, jfwd
  do i = 1, nsite
    jt = mod((i - 1) / nx + 1, nt)
    jfwd = jt * nx + mod(i - 1, nx) + 1
    do mu = 1, 4
      lnk(i, mu) = (lnk(i, mu) + beta * stpl(jfwd, mu) - 0.01 * stpl(jfwd, mu) * stpl(i, mu)) / (1.0 + beta)
    enddo
  enddo
end
`
