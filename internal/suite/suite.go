// Package suite provides the ten MF benchmark programs used to reproduce
// the paper's evaluation (Tables 1–3).
//
// The paper measured ten Fortran programs from the Perfect, Riceps, and
// Mendez benchmark suites. Those sources are not redistributable (and the
// paper's exact inputs are lost), so each program here is a from-scratch
// MF model of its namesake's numerical structure, sized for an
// interpreter. What matters for the reproduction is the mix of subscript
// patterns each program exercises, because that mix is what determines
// how many checks each placement scheme can eliminate:
//
//   - repeated subscripts in straight-line code (availability fodder, NI)
//   - overlapping checks across if/else arms (PRE fodder, SE/LNI)
//   - loop-invariant subscripts, directly and via in-loop temporaries
//     (preheader insertion fodder, LI; the temporaries only hoist with
//     induction expressions, INX)
//   - subscripts linear in loop variables with constant and symbolic
//     bounds (loop-limit substitution fodder, LLS)
//   - indirect (gather/scatter) subscripts, table lookups, and while
//     loops (residual checks that no scheme may remove)
package suite

import "fmt"

// Program is one benchmark program.
type Program struct {
	// Name matches the paper's program name.
	Name string
	// Suite is the benchmark suite the paper took the original from.
	Suite string
	// Description summarizes the modeled computation.
	Description string
	// Source is the MF source text.
	Source string
}

// Programs lists the benchmark programs in the paper's Table 1 order.
var Programs = []Program{
	{"vortex", "Mendez", "2-D point-vortex dynamics: O(n²) induced-velocity pair interactions", srcVortex},
	{"arc2d", "Perfect", "2-D implicit CFD: stencil residuals and ADI tridiagonal sweeps", srcArc2d},
	{"bdna", "Perfect", "molecular dynamics with cutoff neighbor lists (indirect indexing)", srcBdna},
	{"dyfesm", "Perfect", "finite-element structural mechanics: gather/scatter and CG iteration", srcDyfesm},
	{"mdg", "Perfect", "molecular dynamics of water: triangular pair loops over 3-site molecules", srcMdg},
	{"qcd", "Perfect", "lattice gauge theory: flattened 4-D lattice with modular wraparound", srcQcd},
	{"spec77", "Perfect", "spectral weather model: strided butterflies and triangular transforms", srcSpec77},
	{"trfd", "Perfect", "two-electron integral transformation: triangular index arithmetic", srcTrfd},
	{"linpackd", "Riceps", "LU decomposition with partial pivoting (daxpy/idamax)", srcLinpackd},
	{"simple", "Riceps", "2-D Lagrangian hydrodynamics with equation-of-state table lookup", srcSimple},
}

// Get returns the program with the given name.
func Get(name string) (Program, error) {
	for _, p := range Programs {
		if p.Name == name {
			return p, nil
		}
	}
	return Program{}, fmt.Errorf("suite: unknown program %q", name)
}

// Names returns the program names in Table 1 order.
func Names() []string {
	out := make([]string, len(Programs))
	for i, p := range Programs {
		out[i] = p.Name
	}
	return out
}
