package suite

// trfd models the Perfect Club two-electron integral transformation:
// triangular loop nests over packed pair indices i(i−1)/2 + j. The hot
// transform uses direct packed-subscript expressions (linear in the
// innermost index with an opaque invariant offset — loop-limit
// substitution hoists them one level), and each packed element is used
// several times per iteration (availability fodder). The accumulation
// pass computes its packed offsets into temporaries inside the loop, the
// pattern that hoists only as induction expressions (the paper's §4.3
// trfd observation: LI gains ~20% with INX checks).
const srcTrfd = `program trfd
  parameter norb = 24
  parameter npair = 300
  parameter nsteps = 3
  real xij(npair), v(norb, norb), xt(npair)
  real tsum
  integer istep, i, j, ij

  ij = 0
  do i = 1, norb
    do j = 1, i
      ij = ij + 1
      xij(ij) = float(i - j) / float(norb)
    enddo
  enddo
  do i = 1, norb
    do j = 1, norb
      v(i, j) = float(mod(i * j, 5)) / 5.0
    enddo
  enddo

  do istep = 1, nsteps
    call transform()
    call scale()
    call accum()
  enddo

  tsum = 0.0
  ij = 0
  do i = 1, norb
    do j = 1, i
      ij = ij + 1
      tsum = tsum + xij(ij)
    enddo
  enddo
  print tsum
end

subroutine transform()
  integer i, j, k, ioff, joff
  real acc
  ! half-transform over incrementally maintained packed offsets: the
  ! subscript joff + k is linear in k with an invariant offset, and each
  ! element is read twice per iteration (availability fodder)
  ioff = 0
  do i = 1, norb
    joff = 0
    do j = 1, i
      acc = 0.0
      do k = 1, j
        acc = acc + v(k, i) * xij(joff + k) + v(k, j) * xij(joff + k) * 0.5 + v(k, i) * v(k, j) * 0.1
      enddo
      xt(ioff + j) = acc + v(j, i) * v(j, i)
      joff = joff + j
    enddo
    ioff = ioff + i
  enddo
end

subroutine scale()
  integer i, j, kd, k1
  ! scaling sweep through packed diagonal offsets: kd and k1 are
  ! invariant in the j loop but computed inside it, so their checks
  ! hoist only as induction expressions (LI/INX beats LI/PRX here,
  ! the paper's trfd result)
  do i = 1, norb
    do j = 1, norb
      kd = i * (i - 1) / 2 + i
      k1 = i * (i - 1) / 2 + 1
      v(i, j) = v(i, j) * (1.0 + 0.001 * (xij(kd) + xij(k1)))
      v(j, i) = v(j, i) + 0.0001 * (xij(kd) - xij(k1))
    enddo
  enddo
end

subroutine accum()
  integer i, j, ij, ioff, kj, kd
  ! packed offsets via in-loop temporaries: PRX checks on kj and kd
  ! cannot be anticipated at the preheader (both are defined in the
  ! body); INX checks rewrite kj to ioff + j (linear, hoists under LLS)
  ! and kd to ioff + i (invariant, hoists already under LI — the paper's
  ! §4.3 trfd observation)
  ij = 0
  do i = 1, norb
    ioff = i * (i - 1) / 2
    do j = 1, i
      ij = ij + 1
      kj = ioff + j
      kd = ioff + i
      xij(kj) = 0.9 * xij(kj) + 0.1 * xt(ij) + 0.01 * xt(kd) * xij(kj)
    enddo
  enddo
end
`
