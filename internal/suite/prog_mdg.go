package suite

// mdg models the Perfect Club water molecular dynamics code: each
// molecule has three sites (oxygen + two hydrogens) stored in 2-D arrays
// indexed (molecule, site). The O(n²) pair loop runs over distinct
// molecule pairs (triangular) and all 3×3 site combinations
// (constant-bound inner loops whose checks constant-fold). Velocities are
// updated with a leapfrog step.
const srcMdg = `program mdg
  parameter nm = 26
  parameter nsteps = 2
  real xs(nm, 3), ys(nm, 3)
  real fxs(nm, 3), fys(nm, 3)
  real vxs(nm, 3), vys(nm, 3)
  real dt, esum
  integer istep, i, k

  do i = 1, nm
    do k = 1, 3
      xs(i, k) = float(i) + 0.1 * float(k)
      ys(i, k) = float(nm - i) + 0.1 * float(k)
      vxs(i, k) = 0.0
      vys(i, k) = 0.0
    enddo
  enddo
  dt = 0.002

  do istep = 1, nsteps
    call interf()
    call leapfrog()
  enddo

  esum = 0.0
  do i = 1, nm
    do k = 1, 3
      esum = esum + vxs(i, k) * vxs(i, k) + vys(i, k) * vys(i, k)
    enddo
  enddo
  print esum
end

subroutine interf()
  integer i, j, ka, kb
  real dx, dy, r2, s
  do i = 1, nm
    do ka = 1, 3
      fxs(i, ka) = 0.0
      fys(i, ka) = 0.0
    enddo
  enddo
  do i = 1, nm
    do j = i + 1, nm
      do ka = 1, 3
        do kb = 1, 3
          dx = xs(i, ka) - xs(j, kb)
          dy = ys(i, ka) - ys(j, kb)
          r2 = dx * dx + dy * dy + 0.05
          s = 1.0 / (r2 * sqrt(r2))
          fxs(i, ka) = fxs(i, ka) + s * dx
          fys(i, ka) = fys(i, ka) + s * dy
          fxs(j, kb) = fxs(j, kb) - s * dx
          fys(j, kb) = fys(j, kb) - s * dy
        enddo
      enddo
    enddo
  enddo
end

subroutine leapfrog()
  integer i, k
  do i = 1, nm
    do k = 1, 3
      vxs(i, k) = vxs(i, k) + dt * fxs(i, k)
      vys(i, k) = vys(i, k) + dt * fys(i, k)
      xs(i, k) = xs(i, k) + dt * vxs(i, k)
      ys(i, k) = ys(i, k) + dt * vys(i, k)
    enddo
  enddo
end
`
