package suite_test

import (
	"testing"

	"nascent"
	"nascent/internal/suite"
)

func compileRun(t *testing.T, src string, opts nascent.Options) nascent.RunResult {
	t.Helper()
	p, err := nascent.Compile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestAllProgramsCompileAndRunNaive(t *testing.T) {
	for _, prog := range suite.Programs {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			res := compileRun(t, prog.Source, nascent.Options{BoundsChecks: true, Scheme: nascent.Naive})
			if res.Trapped {
				t.Fatalf("naive run trapped: %s", res.TrapNote)
			}
			if res.Output == "" {
				t.Error("no output")
			}
			if res.Checks == 0 {
				t.Error("no dynamic checks in a checked build")
			}
			if res.Instructions == 0 {
				t.Error("no instructions counted")
			}
		})
	}
}

func TestCheckOverheadInPaperBand(t *testing.T) {
	// Paper Table 1: dynamic check/instruction ratios between 22% and
	// 66%. Allow a wider band (15%–90%) for our cost model but require
	// every program to show substantial overhead.
	for _, prog := range suite.Programs {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			res := compileRun(t, prog.Source, nascent.Options{BoundsChecks: true, Scheme: nascent.Naive})
			ratio := float64(res.Checks) / float64(res.Instructions)
			if ratio < 0.15 || ratio > 0.90 {
				t.Errorf("dynamic check/instr ratio = %.2f, want within [0.15, 0.90]", ratio)
			}
		})
	}
}

func TestAllSchemesPreserveSemantics(t *testing.T) {
	for _, prog := range suite.Programs {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			naive := compileRun(t, prog.Source, nascent.Options{BoundsChecks: true, Scheme: nascent.Naive})
			for _, sch := range nascent.OptimizedSchemes {
				for _, kind := range []nascent.CheckKind{nascent.PRX, nascent.INX} {
					res := compileRun(t, prog.Source, nascent.Options{
						BoundsChecks: true, Scheme: sch, Kind: kind,
					})
					if res.Trapped {
						t.Fatalf("%v/%v trapped: %s", sch, kind, res.TrapNote)
					}
					if res.Output != naive.Output {
						t.Errorf("%v/%v changed output: %q vs %q", sch, kind, res.Output, naive.Output)
					}
					if res.Checks > naive.Checks {
						t.Errorf("%v/%v executed more checks than naive: %d > %d", sch, kind, res.Checks, naive.Checks)
					}
				}
			}
		})
	}
}

func TestLLSEliminatesMostChecks(t *testing.T) {
	// Paper Table 2: LLS eliminates 96.7%–99.99% of dynamic checks.
	// Require at least 90% on every program with PRX checks.
	for _, prog := range suite.Programs {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			naive := compileRun(t, prog.Source, nascent.Options{BoundsChecks: true, Scheme: nascent.Naive})
			lls := compileRun(t, prog.Source, nascent.Options{BoundsChecks: true, Scheme: nascent.LLS})
			elim := 100 * (1 - float64(lls.Checks)/float64(naive.Checks))
			if elim < 90 {
				t.Errorf("LLS eliminated only %.2f%% of checks (naive %d -> %d)", elim, naive.Checks, lls.Checks)
			}
		})
	}
}

func TestNIEliminatesMajority(t *testing.T) {
	// Paper Table 2: NI eliminates 61%–92%. Require at least 40%.
	for _, prog := range suite.Programs {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			naive := compileRun(t, prog.Source, nascent.Options{BoundsChecks: true, Scheme: nascent.Naive})
			ni := compileRun(t, prog.Source, nascent.Options{BoundsChecks: true, Scheme: nascent.NI})
			elim := 100 * (1 - float64(ni.Checks)/float64(naive.Checks))
			if elim < 40 {
				t.Errorf("NI eliminated only %.2f%% of checks (naive %d -> %d)", elim, naive.Checks, ni.Checks)
			}
		})
	}
}

func TestGetAndNames(t *testing.T) {
	if len(suite.Programs) != 10 {
		t.Fatalf("suite has %d programs, want 10", len(suite.Programs))
	}
	for _, n := range suite.Names() {
		p, err := suite.Get(n)
		if err != nil || p.Name != n {
			t.Errorf("Get(%q) = %v, %v", n, p.Name, err)
		}
	}
	if _, err := suite.Get("nonesuch"); err == nil {
		t.Error("Get of unknown program should fail")
	}
}
