package suite

// vortex models the Mendez vortex benchmark: n point vortices inducing
// velocities on each other (O(n²) pair loop), then advected forward.
// Subscript mix: dense repeated subscripts (x(i), y(i), u(i) several
// times per iteration), linear subscripts with constant bounds, and a
// conditional inner-loop body (j /= i).
const srcVortex = `program vortex
  parameter nv = 56
  parameter nsteps = 3
  real x(nv), y(nv), g(nv)
  real u(nv), v(nv)
  real xn(nv), yn(nv)
  real dt, vsum
  integer istep

  call initvort()
  dt = 0.005

  do istep = 1, nsteps
    call velocity()
    call advance()
  enddo

  call checksum()
  print vsum
end

subroutine initvort()
  integer i
  do i = 1, nv
    x(i) = float(i) / float(nv)
    y(i) = float(nv - i) / float(nv)
    g(i) = float(mod(i, 5) + 1) / 10.0
    u(i) = 0.0
    v(i) = 0.0
  enddo
end

subroutine checksum()
  integer i
  vsum = 0.0
  do i = 1, nv
    vsum = vsum + x(i) + y(i)
  enddo
end

subroutine velocity()
  integer i, j
  real rx, ry, r2
  do i = 1, nv
    u(i) = 0.0
    v(i) = 0.0
    do j = 1, nv
      ! the softened kernel makes the self-term contribute zero, so the
      ! pair loop needs no conditional (every access is unconditional
      ! and hoistable)
      rx = x(i) - x(j)
      ry = y(i) - y(j)
      r2 = rx * rx + ry * ry + 0.001
      u(i) = u(i) - g(j) * ry / r2
      v(i) = v(i) + g(j) * rx / r2
    enddo
  enddo
end

subroutine advance()
  integer i
  do i = 1, nv
    xn(i) = x(i) + dt * u(i)
    yn(i) = y(i) + dt * v(i)
  enddo
  do i = 1, nv
    x(i) = xn(i)
    y(i) = yn(i)
  enddo
end
`
