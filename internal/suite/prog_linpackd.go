package suite

// linpackd models the Riceps LINPACK benchmark: LU decomposition with
// partial pivoting (idamax pivot search, row swap, rank-1 elimination
// update) followed by back substitution. Subscript mix: symbolic-bound
// inner loops whose lower bound is the outer index (k+1..n), an
// invariant pivot row subscript inside the swap loop, and dense repeated
// a(i,j)/a(i,k)/a(k,j) triples (availability fodder).
const srcLinpackd = `program linpackd
  parameter n = 22
  real a(n, n), b(n), xv(n)
  integer ipvt(n)
  real rsum
  integer i, j

  call matgen()
  call factor()
  call solve()
  call residcheck()
  print rsum
end

subroutine matgen()
  integer i, j
  do i = 1, n
    do j = 1, n
      a(i, j) = float(mod(i * j + i, 13)) / 13.0
    enddo
    a(i, i) = a(i, i) + float(n)
    b(i) = 1.0
  enddo
end

subroutine residcheck()
  integer i
  rsum = 0.0
  do i = 1, n
    rsum = rsum + xv(i)
  enddo
end

subroutine factor()
  integer i, j, k, l
  real amax, t
  do k = 1, n - 1
    ! idamax: pivot search
    l = k
    amax = abs(a(k, k))
    do i = k + 1, n
      if (abs(a(i, k)) > amax) then
        amax = abs(a(i, k))
        l = i
      endif
    enddo
    ipvt(k) = l
    ! swap rows k and l (l invariant in the j loop)
    if (l /= k) then
      do j = k, n
        t = a(k, j)
        a(k, j) = a(l, j)
        a(l, j) = t
      enddo
    endif
    ! elimination: rank-1 update of the trailing block
    do i = k + 1, n
      a(i, k) = a(i, k) / a(k, k)
      do j = k + 1, n
        a(i, j) = a(i, j) - a(i, k) * a(k, j)
      enddo
    enddo
  enddo
  ipvt(n) = n
end

subroutine solve()
  integer i, j, l
  real t
  ! forward elimination of b with pivoting
  do i = 1, n
    xv(i) = b(i)
  enddo
  do j = 1, n - 1
    l = ipvt(j)
    t = xv(l)
    xv(l) = xv(j)
    xv(j) = t
    do i = j + 1, n
      xv(i) = xv(i) - a(i, j) * xv(j)
    enddo
  enddo
  ! back substitution
  do j = n, 1, -1
    xv(j) = xv(j) / a(j, j)
    do i = 1, j - 1
      xv(i) = xv(i) - a(i, j) * xv(j)
    enddo
  enddo
end
`
