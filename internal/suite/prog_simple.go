package suite

// simple models the Riceps/Mendez SIMPLE 2-D Lagrangian hydrodynamics
// code: pressure and velocity stencil sweeps over a 2-D mesh, an
// equation-of-state evaluated through a clamped table lookup (min/max
// subscripts are opaque atoms, leaving residual checks), and a
// while-loop timestep controller.
const srcSimple = `program simple
  parameter nx = 24
  parameter ny = 24
  parameter ntab = 50
  real p(nx, ny), rho(nx, ny), e(nx, ny)
  real ux(nx, ny), uy(nx, ny)
  real eos(ntab)
  real t, tstop, dt, esum
  integer i, j

  call inittab()
  call initmesh()

  t = 0.0
  tstop = 0.02
  dt = 0.004
  while (t < tstop)
    call hydro()
    call eosup()
    t = t + dt
  endwhile

  esum = 0.0
  do j = 1, ny
    do i = 1, nx
      esum = esum + e(i, j) + p(i, j)
    enddo
  enddo
  print esum
end

subroutine inittab()
  integer i
  do i = 1, ntab
    eos(i) = 1.0 + float(i) / float(ntab)
  enddo
end

subroutine initmesh()
  integer i, j
  do j = 1, ny
    do i = 1, nx
      rho(i, j) = 1.0 + 0.1 * float(mod(i + j, 5))
      e(i, j) = 1.0
      p(i, j) = 0.4 * rho(i, j) * e(i, j)
      ux(i, j) = 0.0
      uy(i, j) = 0.0
    enddo
  enddo
end

subroutine hydro()
  integer i, j
  do j = 2, ny - 1
    do i = 2, nx - 1
      ux(i, j) = ux(i, j) - dt * (p(i + 1, j) - p(i - 1, j)) / (2.0 * rho(i, j))
      uy(i, j) = uy(i, j) - dt * (p(i, j + 1) - p(i, j - 1)) / (2.0 * rho(i, j))
    enddo
  enddo
  do j = 2, ny - 1
    do i = 2, nx - 1
      e(i, j) = e(i, j) + dt * (ux(i + 1, j) - ux(i - 1, j) + uy(i, j + 1) - uy(i, j - 1))
      if (e(i, j) < 0.1) then
        e(i, j) = 0.1
      endif
    enddo
  enddo
end

subroutine eosup()
  integer i, j, itab
  do j = 1, ny
    do i = 1, nx
      ! clamped table lookup: the subscript is opaque (min/max)
      itab = int(e(i, j) * float(ntab) / 4.0) + 1
      p(i, j) = 0.4 * rho(i, j) * e(i, j) * eos(min(max(itab, 1), ntab))
    enddo
  enddo
end
`
