package suite

// dyfesm models the Perfect Club finite-element structural dynamics
// code: element loops gather nodal displacements through a connectivity
// table, form small dense element matrices (constant-bound loops), and
// scatter forces back; a conjugate-gradient-style while loop iterates to
// a tolerance. Subscript mix: indirect gather/scatter, if/else arms with
// overlapping checks (the paper's dyfesm is where SE/LNI gain most over
// NI), a while loop that blocks hoisting, and invariant subscripts
// computed into temporaries inside loops (hoistable only as induction
// expressions).
const srcDyfesm = `program dyfesm
  parameter nel = 40
  parameter nnd = 44
  parameter nsteps = 3
  integer conn(nel, 4)
  real u(nnd), f(nnd), kel(4, 4), ue(4), fe(4)
  real r(nnd), p(nnd), ap(nnd)
  real tol, rho, fsum
  integer istep, i, e

  do e = 1, nel
    conn(e, 1) = e
    conn(e, 2) = e + 1
    conn(e, 3) = e + 2
    conn(e, 4) = e + 4
  enddo
  do i = 1, nnd
    u(i) = float(mod(i, 7)) / 7.0
    f(i) = 0.0
  enddo
  tol = 0.0001

  do istep = 1, nsteps
    call assemble()
    call solve()
  enddo

  fsum = 0.0
  do i = 1, nnd
    fsum = fsum + u(i)
  enddo
  print fsum
end

subroutine assemble()
  integer e, i, j, n1, nj
  do i = 1, nnd
    f(i) = 0.0
  enddo
  do e = 1, nel
    ! gather element displacements (indirect)
    do j = 1, 4
      nj = conn(e, j)
      ue(j) = u(nj)
    enddo
    ! element stiffness: constant-bound dense loops
    do i = 1, 4
      do j = 1, 4
        if (i == j) then
          kel(i, j) = 4.0
        else
          kel(i, j) = -1.0
        endif
      enddo
    enddo
    ! fe = kel * ue
    do i = 1, 4
      fe(i) = 0.0
      do j = 1, 4
        fe(i) = fe(i) + kel(i, j) * ue(j)
      enddo
    enddo
    ! scatter (indirect); the base node n1 is invariant in the j loop
    ! only through the temporary, so only INX checks hoist it
    n1 = conn(e, 1)
    f(n1) = f(n1) + fe(1)
    do j = 2, 4
      nj = conn(e, j)
      f(nj) = f(nj) + fe(j)
    enddo
  enddo
end

subroutine solve()
  integer i, iter
  real rho, alpha, pap
  do i = 1, nnd
    r(i) = f(i) - u(i)
    p(i) = r(i)
  enddo
  rho = 0.0
  do i = 1, nnd
    rho = rho + r(i) * r(i)
  enddo
  iter = 0
  while (rho > tol and iter < 6)
    do i = 2, nnd - 1
      ap(i) = 2.0 * p(i) - 0.5 * (p(i - 1) + p(i + 1))
    enddo
    ap(1) = 2.0 * p(1) - 0.5 * p(2)
    ap(nnd) = 2.0 * p(nnd) - 0.5 * p(nnd - 1)
    pap = 0.0
    do i = 1, nnd
      pap = pap + p(i) * ap(i)
    enddo
    alpha = rho / (pap + 0.001)
    do i = 1, nnd
      u(i) = u(i) + alpha * p(i)
      r(i) = r(i) - alpha * ap(i)
    enddo
    rho = 0.0
    do i = 1, nnd
      rho = rho + r(i) * r(i)
    enddo
    do i = 1, nnd
      p(i) = r(i) + 0.5 * p(i)
    enddo
    iter = iter + 1
  endwhile
end
`
