package suite

// spec77 models the Perfect Club spectral weather code: an FFT-like
// butterfly pass over strided elements (non-unit constant steps — the
// trip count still folds), a triangular Legendre-transform loop nest
// (inner bounds symbolic in the outer index, hoisted as per-outer-
// iteration cond-checks), and a grid-to-spectral accumulation.
const srcSpec77 = `program spec77
  parameter npt = 64
  parameter nw = 16
  parameter nsteps = 3
  real gr(npt), gi(npt)
  real sr(nw, nw), si(nw, nw)
  real plm(nw, nw)
  real ssum
  integer istep, i, m, n

  do i = 1, npt
    gr(i) = float(mod(3 * i, 17)) / 17.0
    gi(i) = 0.0
  enddo
  do m = 1, nw
    do n = 1, nw
      plm(m, n) = float(m + n) / float(2 * nw)
      sr(m, n) = 0.0
      si(m, n) = 0.0
    enddo
  enddo

  do istep = 1, nsteps
    call butterfly()
    call legendre()
  enddo

  ssum = 0.0
  do m = 1, nw
    do n = m, nw
      ssum = ssum + sr(m, n) + si(m, n)
    enddo
  enddo
  print ssum
end

subroutine butterfly()
  integer i, half
  real tr, ti
  ! one radix-2 stage with stride 2 (constant non-unit step)
  do i = 1, npt - 1, 2
    tr = gr(i) + gr(i + 1)
    ti = gr(i) - gr(i + 1)
    gr(i) = tr
    gr(i + 1) = ti
  enddo
  half = npt / 2
  do i = 1, half
    gi(i) = gr(2 * i - 1) - gr(2 * i)
    gi(i + half) = gr(2 * i - 1) + gr(2 * i)
  enddo
end

subroutine legendre()
  integer m, n, ig
  real acc
  ! triangular transform: inner loop bounds depend on the outer index
  do m = 1, nw
    do n = m, nw
      acc = 0.0
      do ig = 1, nw
        acc = acc + plm(m, n) * (gr(ig + m - 1) + gi(ig)) + plm(n, m) * (gr(ig + m - 1) - gi(ig))
      enddo
      sr(m, n) = sr(m, n) + acc
      si(m, n) = si(m, n) + acc * 0.5
    enddo
  enddo
end
`
