package suite

// arc2d models the Perfect Club 2-D implicit CFD code: five-point stencil
// residuals over a 2-D grid followed by ADI-style tridiagonal sweeps in
// each direction (Thomas algorithm). Subscript mix: very dense 2-D
// accesses with ±1 offsets (the paper's highest check/instruction
// ratio), plus backward (-1 step) substitution loops.
const srcArc2d = `program arc2d
  parameter nx = 30
  parameter ny = 30
  parameter nsweep = 3
  real q(nx, ny), qn(nx, ny), rhs(nx, ny)
  real aa(nx), bb(nx), cc(nx), ff(nx)
  real qsum
  integer i, j, k

  call initgrid()

  do k = 1, nsweep
    call residual()
    call xsweep()
    call ysweep()
    call boundary()
  enddo

  qsum = 0.0
  do j = 1, ny
    do i = 1, nx
      qsum = qsum + q(i, j)
    enddo
  enddo
  print qsum
end

subroutine initgrid()
  integer i, j
  do j = 1, ny
    do i = 1, nx
      q(i, j) = float(i + j) / float(nx + ny)
      qn(i, j) = 0.0
      rhs(i, j) = 0.0
    enddo
  enddo
end

subroutine boundary()
  integer i, j
  ! reflective boundary conditions along all four edges
  do i = 1, nx
    q(i, 1) = q(i, 2)
    q(i, ny) = q(i, ny - 1)
  enddo
  do j = 1, ny
    q(1, j) = q(2, j)
    q(nx, j) = q(nx - 1, j)
  enddo
end

subroutine residual()
  integer i, j
  do j = 2, ny - 1
    do i = 2, nx - 1
      rhs(i, j) = q(i - 1, j) + q(i + 1, j) + q(i, j - 1) + q(i, j + 1) - 4.0 * q(i, j)
    enddo
  enddo
end

subroutine xsweep()
  integer i, j
  real w
  do j = 2, ny - 1
    do i = 2, nx - 1
      aa(i) = -1.0
      bb(i) = 4.0
      cc(i) = -1.0
      ff(i) = rhs(i, j)
    enddo
    do i = 3, nx - 1
      w = aa(i) / bb(i - 1)
      bb(i) = bb(i) - w * cc(i - 1)
      ff(i) = ff(i) - w * ff(i - 1)
    enddo
    qn(nx - 1, j) = ff(nx - 1) / bb(nx - 1)
    do i = nx - 2, 2, -1
      qn(i, j) = (ff(i) - cc(i) * qn(i + 1, j)) / bb(i)
    enddo
  enddo
end

subroutine ysweep()
  integer i, j
  real w
  do i = 2, nx - 1
    do j = 2, ny - 1
      aa(j) = -1.0
      bb(j) = 4.0
      cc(j) = -1.0
      ff(j) = qn(i, j)
    enddo
    do j = 3, ny - 1
      w = aa(j) / bb(j - 1)
      bb(j) = bb(j) - w * cc(j - 1)
      ff(j) = ff(j) - w * ff(j - 1)
    enddo
    q(i, ny - 1) = q(i, ny - 1) + 0.2 * ff(ny - 1) / bb(ny - 1)
    do j = ny - 2, 2, -1
      q(i, j) = q(i, j) + 0.2 * (ff(j) - cc(j) * q(i, j + 1)) / bb(j)
    enddo
  enddo
end
`
