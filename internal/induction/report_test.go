package induction_test

import (
	"strings"
	"testing"

	"nascent/internal/induction"
	"nascent/internal/ir"
	"nascent/internal/testutil"
)

func TestClassStrings(t *testing.T) {
	want := map[induction.Class]string{
		induction.Invariant:  "invariant",
		induction.Linear:     "linear",
		induction.Polynomial: "polynomial",
		induction.Unknown:    "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d: %q", int(c), c.String())
		}
	}
}

func TestIEString(t *testing.T) {
	ind, l, a := analyzeLoop(t, `program p
  integer i
  do i = 1, 10
    j = 2*i + 3
  enddo
end
`)
	ie := ieOfUse(t, a, ind, l, "j")
	s := ie.String()
	if !strings.Contains(s, "linear") || !strings.Contains(s, "h.") {
		t.Errorf("IE string = %q", s)
	}
}

// TestOuterHInvariantInInner: an INX-materialized outer-loop h is
// invariant from the inner loop's perspective.
func TestOuterHInvariantInInner(t *testing.T) {
	src := `program p
  integer i, j, k
  k = 0
  do i = 1, 6
    k = k + 3
    do j = 1, 4
      m = k + j
    enddo
  enddo
end
`
	a := testutil.AnalyzeMain(t, src, false)
	ind := induction.Analyze(a.Fn, a.Forest, a.SSA)
	outer := a.Forest.ByHeader(a.Fn.DoLoops[0].Header)
	inner := a.Forest.ByHeader(a.Fn.DoLoops[1].Header)

	// Relative to the outer loop, k's use is linear: base + 3h.
	var ieOuter induction.IE
	a.Fn.ForEachStmt(func(b *ir.Block, _ int, s ir.Stmt) {
		if as, ok := s.(*ir.AssignStmt); ok && as.Dst.Name == "m" {
			ieOuter = ind.IEOfExpr(as.Src, outer)
		}
	})
	// k + j relative to outer: j is inner-loop-varying => unknown/poly.
	if ieOuter.Class == induction.Invariant {
		t.Errorf("k+j invariant w.r.t. outer loop: %s", ieOuter)
	}

	// Build a form over the outer h and classify it from the inner loop:
	// terms mentioning h(outer) must be invariant there.
	hOuter := ind.HVar(outer)
	terms := []ir.CheckTerm{{Coef: 2, Atom: &ir.VarRef{Var: hOuter}}}
	vals := a.SSA.OutValues[inner.Header]
	ie := ind.IEOfFormAt(terms, inner, vals)
	if ie.Class != induction.Invariant {
		t.Errorf("outer h from inner loop: %s, want invariant", ie.Class)
	}
	// And from its own loop it is linear with slope 2.
	valsO := a.SSA.OutValues[outer.Header]
	ieOwn := ind.IEOfFormAt(terms, outer, valsO)
	if ieOwn.Class != induction.Linear {
		t.Errorf("own h: %s, want linear", ieOwn.Class)
	}
	if slope, _ := ind.SlopeOf(outer, ieOwn.Form); slope != 2 {
		t.Errorf("slope = %d, want 2", slope)
	}
	// An unrelated loop's h is unknown from a disjoint loop... (inner h
	// from outer perspective varies):
	hInner := ind.HVar(inner)
	termsI := []ir.CheckTerm{{Coef: 1, Atom: &ir.VarRef{Var: hInner}}}
	ieBad := ind.IEOfFormAt(termsI, outer, valsO)
	if ieBad.Class != induction.Unknown {
		t.Errorf("inner h from outer loop: %s, want unknown", ieBad.Class)
	}
}

func TestLoopStableTerms(t *testing.T) {
	src := `program p
  integer i, k, n
  real b(10)
  k = 2
  do i = 1, 10
    n = i * 2
    b(k) = 1.0
  enddo
end
`
	a := testutil.AnalyzeMain(t, src, false)
	ind := induction.Analyze(a.Fn, a.Forest, a.SSA)
	l := a.Forest.Loops[0]
	kVar := testutil.FindVar(t, a.Prog, a.Fn, "k")
	nVar := testutil.FindVar(t, a.Prog, a.Fn, "n")

	stable := []ir.CheckTerm{{Coef: 1, Atom: &ir.VarRef{Var: kVar}}}
	if !ind.LoopStableTerms(l, stable) {
		t.Error("k is unassigned in the loop: must be stable")
	}
	unstable := []ir.CheckTerm{{Coef: 1, Atom: &ir.VarRef{Var: nVar}}}
	if ind.LoopStableTerms(l, unstable) {
		t.Error("n is assigned in the loop: must be unstable")
	}
	// h of the loop itself is exempt.
	h := ind.HVar(l)
	withH := []ir.CheckTerm{{Coef: 1, Atom: &ir.VarRef{Var: h}}, {Coef: 1, Atom: &ir.VarRef{Var: kVar}}}
	if !ind.LoopStableTerms(l, withH) {
		t.Error("the loop's own h must be exempt from stability")
	}
}

func TestLoadStabilityUnderStores(t *testing.T) {
	src := `program p
  integer i, k
  real b(10), c(10)
  k = 2
  do i = 1, 10
    c(i) = b(k)
  enddo
end
`
	a := testutil.AnalyzeMain(t, src, false)
	ind := induction.Analyze(a.Fn, a.Forest, a.SSA)
	l := a.Forest.Loops[0]
	var loadB, loadC ir.Expr
	a.Fn.ForEachStmt(func(b *ir.Block, _ int, s ir.Stmt) {
		if st, ok := s.(*ir.StoreStmt); ok {
			loadB = st.Val
		}
	})
	if loadB == nil {
		t.Fatal("load not found")
	}
	// b is not stored in the loop: a load atom from b is stable.
	if !ind.LoopStableTerms(l, []ir.CheckTerm{{Coef: 1, Atom: loadB}}) {
		t.Error("load from un-stored array must be stable")
	}
	// A load from c (stored each iteration) is not.
	kVar := testutil.FindVar(t, a.Prog, a.Fn, "k")
	var cArr *ir.Array
	for _, arr := range a.Prog.GlobalArrays {
		if arr.Name == "c" {
			cArr = arr
		}
	}
	loadC = &ir.Load{Arr: cArr, Idx: []ir.Expr{&ir.VarRef{Var: kVar}}}
	if ind.LoopStableTerms(l, []ir.CheckTerm{{Coef: 1, Atom: loadC}}) {
		t.Error("load from stored array must be unstable")
	}
}
