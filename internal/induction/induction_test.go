package induction_test

import (
	"strings"
	"testing"

	"nascent/internal/induction"
	"nascent/internal/ir"
	"nascent/internal/linform"
	"nascent/internal/loops"
	"nascent/internal/testutil"
)

// analyzeLoop compiles src, returning the analysis and the innermost loop.
func analyzeLoop(t *testing.T, src string) (*induction.Analysis, *loops.Loop, *testutil.Analyzed) {
	t.Helper()
	a := testutil.AnalyzeMain(t, src, false)
	if len(a.Forest.Loops) == 0 {
		t.Fatal("no loops found")
	}
	ind := induction.Analyze(a.Fn, a.Forest, a.SSA)
	return ind, a.Forest.Loops[0], a
}

// ieOfUse finds the assignment "<dst> = ..." and returns the IE of its
// source expression relative to loop l.
func ieOfUse(t *testing.T, a *testutil.Analyzed, ind *induction.Analysis, l *loops.Loop, dst string) induction.IE {
	t.Helper()
	var ie induction.IE
	found := false
	a.Fn.ForEachStmt(func(b *ir.Block, _ int, s ir.Stmt) {
		if as, ok := s.(*ir.AssignStmt); ok && as.Dst.Name == dst && l.Contains(b) && !found {
			ie = ind.IEOfExpr(as.Src, l)
			found = true
		}
	})
	if !found {
		t.Fatalf("assignment to %s inside loop not found", dst)
	}
	return ie
}

func TestDoIndexIsLinear(t *testing.T) {
	ind, l, a := analyzeLoop(t, `program p
  integer i
  do i = 1, 10
    j = i
  enddo
end
`)
	ie := ieOfUse(t, a, ind, l, "j")
	if ie.Class != induction.Linear {
		t.Fatalf("class = %s, want linear (form %s)", ie.Class, ie.Form)
	}
	slope, base := ind.SlopeOf(l, ie.Form)
	if slope != 1 {
		t.Errorf("slope = %d, want 1", slope)
	}
	if !base.IsConst() || base.Const != 1 {
		t.Errorf("base = %s, want 1", base)
	}
}

func TestFigure2Classification(t *testing.T) {
	// Paper Figure 2:
	//   j=0; k=3; m=5
	//   for i = 0 to n-1:  j=j+1; k=k+m; a(k)=2*m+1
	// j is linear (h+1 at the use after increment), k is linear 5h+8
	// (m=5 is constant-propagated), 2*m+1 is invariant.
	src := `program p
  integer i, j, k, m, n
  integer a(1:100)
  j = 0
  k = 3
  m = 5
  do i = 0, n - 1
    j = j + 1
    k = k + m
    a(k) = 2*m + 1
  enddo
end
`
	ind, l, a := analyzeLoop(t, src)

	// IE of k at its use in a(k): find the StoreStmt index.
	var kIE induction.IE
	a.Fn.ForEachStmt(func(b *ir.Block, _ int, s ir.Stmt) {
		if st, ok := s.(*ir.StoreStmt); ok && l.Contains(b) {
			kIE = ind.IEOfExpr(st.Idx[0], l)
		}
	})
	if kIE.Class != induction.Linear {
		t.Fatalf("k class = %s (%s), want linear", kIE.Class, kIE.Form)
	}
	slope, base := ind.SlopeOf(l, kIE.Form)
	if slope != 5 || !base.IsConst() || base.Const != 8 {
		t.Errorf("k IE = %d*h + %s, want 5*h + 8", slope, base)
	}

	// IE of the stored value 2*m+1 must be invariant 11.
	var valIE induction.IE
	a.Fn.ForEachStmt(func(b *ir.Block, _ int, s ir.Stmt) {
		if st, ok := s.(*ir.StoreStmt); ok && l.Contains(b) {
			valIE = ind.IEOfExpr(st.Val, l)
		}
	})
	if valIE.Class != induction.Invariant || !valIE.Form.IsConst() || valIE.Form.Const != 11 {
		t.Errorf("2*m+1 IE = %s %s, want invariant 11", valIE.Class, valIE.Form)
	}

	// Trip count of "do i = 0, n-1" is (n-1) - 0 + 1 = n.
	trip, ok := ind.TripCount(l)
	if !ok {
		t.Fatal("no trip count")
	}
	if trip.Const != 0 || len(trip.Terms) != 1 || trip.Terms[0].Coef != 1 {
		t.Errorf("trip = %s, want n", trip)
	}
	if ir.ExprString(trip.Terms[0].Atom) != "n" {
		t.Errorf("trip atom = %s, want n", ir.ExprString(trip.Terms[0].Atom))
	}
}

func TestPolynomialClassification(t *testing.T) {
	// s accumulates a linear value: s = s + j with j linear => polynomial
	// (the paper's h*(h+1)/2 pattern).
	ind, l, a := analyzeLoop(t, `program p
  integer i, j, s
  s = 0
  j = 0
  do i = 1, 10
    j = j + 1
    s = s + j
    k = s
  enddo
end
`)
	ie := ieOfUse(t, a, ind, l, "k")
	if ie.Class != induction.Polynomial {
		t.Errorf("class = %s, want polynomial", ie.Class)
	}
}

func TestSymbolicSlopeIsPolynomial(t *testing.T) {
	// k = k + m with m loop-invariant but symbolic: recognized sequence,
	// not linear with a constant slope.
	ind, l, a := analyzeLoop(t, `program p
  integer i, k, m, n
  k = 0
  m = n * 2
  do i = 1, 10
    k = k + m
    j = k
  enddo
end
`)
	ie := ieOfUse(t, a, ind, l, "j")
	if ie.Class != induction.Polynomial {
		t.Errorf("class = %s, want polynomial (symbolic slope)", ie.Class)
	}
}

func TestInvariantThroughTemporary(t *testing.T) {
	// t2 = k + 3 computed inside the loop from invariant k: the IE of t2
	// rewrites away the in-loop temporary — the mechanism that makes
	// INX checks hoistable (paper §4.3, the trfd LI case).
	ind, l, a := analyzeLoop(t, `program p
  integer i, k, m, n
  k = n
  do i = 1, 10
    m = k + 3
    j = m
  enddo
end
`)
	ie := ieOfUse(t, a, ind, l, "j")
	if ie.Class != induction.Invariant {
		t.Fatalf("class = %s (%s), want invariant", ie.Class, ie.Form)
	}
	// The in-loop temporary m = k + 3 rewrites away; the copy chain
	// k = n additionally resolves to the preheader-stable variable n,
	// so the form is n + 3.
	if ie.Form.Const != 3 || len(ie.Form.Terms) != 1 {
		t.Fatalf("form = %s, want n + 3", ie.Form)
	}
	if ir.ExprString(ie.Form.Terms[0].Atom) != "n" {
		t.Errorf("atom = %s, want n", ir.ExprString(ie.Form.Terms[0].Atom))
	}
}

func TestInvariantConstantFolding(t *testing.T) {
	// k = 7 outside the loop constant-folds through the temporary
	// (Figure 2 relies on the same folding for m = 5).
	ind, l, a := analyzeLoop(t, `program p
  integer i, k, m
  k = 7
  do i = 1, 10
    m = k + 3
    j = m
  enddo
end
`)
	ie := ieOfUse(t, a, ind, l, "j")
	if ie.Class != induction.Invariant || !ie.Form.IsConst() || ie.Form.Const != 10 {
		t.Errorf("IE = %s %s, want invariant 10", ie.Class, ie.Form)
	}
}

func TestConditionalIncrementIsUnknown(t *testing.T) {
	ind, l, a := analyzeLoop(t, `program p
  integer i, k, n
  k = 0
  do i = 1, 10
    if (i > n) then
      k = k + 1
    endif
    j = k
  enddo
end
`)
	// The innermost "loop" list may order loops differently; use the DO loop.
	doLoop := a.Forest.ByHeader(a.Fn.DoLoops[0].Header)
	_ = l
	ie := ieOfUse(t, a, ind, doLoop, "j")
	if ie.Class != induction.Unknown {
		t.Errorf("class = %s, want unknown for conditional increment", ie.Class)
	}
}

func TestVariableModifiedByCallIsUnknown(t *testing.T) {
	p := testutil.BuildIR(t, `program p
  integer i, g
  g = 1
  do i = 1, 10
    call bump()
    j = g
  enddo
end
subroutine bump()
  g = g + 1
end
`, false)
	a := testutil.AnalyzeFunc(t, p, p.Main())
	ind := induction.Analyze(a.Fn, a.Forest, a.SSA)
	l := a.Forest.Loops[0]
	ie := ieOfUse(t, a, ind, l, "j")
	if ie.Class != induction.Unknown {
		t.Errorf("class = %s, want unknown (g modified by call)", ie.Class)
	}
}

func TestNestedLoopPerspective(t *testing.T) {
	// k increments in the outer loop: linear for the outer loop,
	// invariant for the inner loop.
	src := `program p
  integer i, j, k
  k = 0
  do i = 1, 10
    k = k + 2
    do j = 1, 5
      m = k
    enddo
  enddo
end
`
	a := testutil.AnalyzeMain(t, src, false)
	ind := induction.Analyze(a.Fn, a.Forest, a.SSA)
	outer := a.Forest.ByHeader(a.Fn.DoLoops[0].Header)
	inner := a.Forest.ByHeader(a.Fn.DoLoops[1].Header)

	ieInner := ieOfUse(t, a, ind, inner, "m")
	if ieInner.Class != induction.Invariant {
		t.Errorf("inner view: %s (%s), want invariant", ieInner.Class, ieInner.Form)
	}
	ieOuter := ieOfUse(t, a, ind, outer, "m")
	if ieOuter.Class != induction.Linear {
		t.Errorf("outer view: %s (%s), want linear", ieOuter.Class, ieOuter.Form)
	}
	if slope, base := ind.SlopeOf(outer, ieOuter.Form); slope != 2 || !base.IsConst() || base.Const != 2 {
		t.Errorf("outer IE = %d*h + %s, want 2*h + 2", slope, base)
	}
}

func TestTripCounts(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // rendered trip form, "" = unavailable
	}{
		{"const", "program p\n integer i\n do i = 1, 10\n  j = i\n enddo\nend\n", "10"},
		{"sym", "program p\n integer i, n\n do i = 1, n\n  j = i\n enddo\nend\n", "n"},
		{"symLo", "program p\n integer i, n, m\n do i = m, n\n  j = i\n enddo\nend\n", "-m + n + 1"},
		{"step2const", "program p\n integer i\n do i = 1, 10, 2\n  j = i\n enddo\nend\n", "5"},
		{"step2sym", "program p\n integer i, n\n do i = 1, n, 2\n  j = i\n enddo\nend\n", ""},
		{"negStep", "program p\n integer i\n do i = 10, 1, -1\n  j = i\n enddo\nend\n", "10"},
		{"zeroTrip", "program p\n integer i\n do i = 5, 1\n  j = i\n enddo\nend\n", "-3"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ind, l, _ := analyzeLoop(t, c.src)
			trip, ok := ind.TripCount(l)
			if c.want == "" {
				if ok {
					t.Errorf("trip = %s, want unavailable", trip)
				}
				return
			}
			if !ok {
				t.Fatal("trip count unavailable")
			}
			if got := trip.String(); got != c.want {
				t.Errorf("trip = %s, want %s", got, c.want)
			}
		})
	}
}

func TestGuardExpr(t *testing.T) {
	ind, l, _ := analyzeLoop(t, `program p
  integer i, n
  do i = 1, n
    j = i
  enddo
end
`)
	g, ok := ind.GuardExpr(l)
	if !ok || g == nil {
		t.Fatalf("guard = %v ok=%v", g, ok)
	}
	if ir.ExprString(g) != "(1 <= n)" {
		t.Errorf("guard = %s", ir.ExprString(g))
	}

	// Constant, always-executing loop: no guard needed.
	ind2, l2, _ := analyzeLoop(t, `program p
  integer i
  do i = 1, 10
    j = i
  enddo
end
`)
	g2, ok2 := ind2.GuardExpr(l2)
	if !ok2 || g2 != nil {
		t.Errorf("constant loop guard = %v ok=%v, want nil/true", g2, ok2)
	}

	// While loop: no guard machinery.
	ind3, l3, _ := analyzeLoop(t, `program p
  integer i
  while (i < 10)
    i = i + 1
  endwhile
end
`)
	if _, ok3 := ind3.GuardExpr(l3); ok3 {
		t.Error("while loop should have no guard")
	}
}

func TestLastH(t *testing.T) {
	ind, l, _ := analyzeLoop(t, `program p
  integer i, n
  do i = 1, n
    j = i
  enddo
end
`)
	last, ok := ind.LastH(l)
	if !ok {
		t.Fatal("LastH unavailable")
	}
	if last.String() != "n - 1" {
		t.Errorf("lastH = %s, want n - 1", last)
	}
}

func TestHVarStable(t *testing.T) {
	ind, l, _ := analyzeLoop(t, `program p
  integer i
  do i = 1, 10
    j = i
  enddo
end
`)
	h1 := ind.HVar(l)
	h2 := ind.HVar(l)
	if h1 != h2 {
		t.Error("HVar not stable")
	}
	if !strings.HasPrefix(h1.Name, "h.") {
		t.Errorf("h name = %q", h1.Name)
	}
	if !ind.IsHVar(l, h1) {
		t.Error("IsHVar failed")
	}
}

func TestIEOfExprCombinesLinear(t *testing.T) {
	// 2*i + 3 with i = 1..n: slope 2, base 2*1+3 = 5.
	ind, l, a := analyzeLoop(t, `program p
  integer i
  do i = 1, 10
    j = 2*i + 3
  enddo
end
`)
	ie := ieOfUse(t, a, ind, l, "j")
	if ie.Class != induction.Linear {
		t.Fatalf("class = %s", ie.Class)
	}
	slope, base := ind.SlopeOf(l, ie.Form)
	if slope != 2 || !base.IsConst() || base.Const != 5 {
		t.Errorf("IE = %d*h + %s, want 2*h + 5", slope, base)
	}
}

func TestLinearMinusLinearIsInvariant(t *testing.T) {
	// i - i cancels; 2*i - i - i cancels too.
	ind, l, a := analyzeLoop(t, `program p
  integer i
  do i = 1, 10
    j = 2*i - i - i + 7
  enddo
end
`)
	ie := ieOfUse(t, a, ind, l, "j")
	if ie.Class != induction.Invariant || ie.Form.Const != 7 {
		t.Errorf("IE = %s %s, want invariant 7", ie.Class, ie.Form)
	}
	_ = linform.Form{}
}

func TestLoadAtomInvariantWhenArrayUntouched(t *testing.T) {
	ind, l, a := analyzeLoop(t, `program p
  integer b(10)
  integer i, k
  k = 2
  do i = 1, 10
    j = b(k)
  enddo
end
`)
	ie := ieOfUse(t, a, ind, l, "j")
	if ie.Class != induction.Invariant {
		t.Errorf("b(k) with untouched b: %s, want invariant", ie.Class)
	}
}

func TestLoadAtomUnknownWhenArrayStored(t *testing.T) {
	ind, l, a := analyzeLoop(t, `program p
  integer b(10)
  integer i, k
  k = 2
  do i = 1, 10
    b(i) = i
    j = b(k)
  enddo
end
`)
	ie := ieOfUse(t, a, ind, l, "j")
	if ie.Class != induction.Unknown {
		t.Errorf("b(k) with b stored in loop: %s, want unknown", ie.Class)
	}
}
