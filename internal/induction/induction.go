// Package induction implements SSA-based induction variable analysis in
// the style the paper inherits from Gerlek, Stoltz & Wolfe (§2.3,
// Figure 2): every loop is assigned a basic loop variable h taking values
// 0,1,2,... per iteration, and every value is associated with an
// induction expression (IE) classified as invariant, linear, polynomial,
// or unknown in h.
//
// IEs are linear forms (internal/linform) whose atoms are either the
// loop's virtual variable h or expressions that are invariant in the loop
// and materializable at the loop preheader. This representation is what
// the preheader insertion schemes (LI, LLS) and INX-check construction
// consume directly.
package induction

import (
	"fmt"

	"nascent/internal/ir"
	"nascent/internal/linform"
	"nascent/internal/loops"
	"nascent/internal/ssa"
)

// Class classifies an induction expression.
type Class int

// IE classes, in increasing "complexity" order.
const (
	// Invariant: the value does not change while the loop runs, and the
	// IE form is materializable at the loop preheader.
	Invariant Class = iota
	// Linear: value = Base + Slope·h with constant Slope ≠ 0.
	Linear
	// Polynomial: a recognized induction sequence that is not linear with
	// a constant slope (e.g. h·(h+1)/2, or linear with a symbolic slope).
	// The optimizer treats it as Unknown; it exists for reporting parity
	// with the paper's classification (Figure 2).
	Polynomial
	// Unknown: not a recognized sequence.
	Unknown
)

func (c Class) String() string {
	switch c {
	case Invariant:
		return "invariant"
	case Linear:
		return "linear"
	case Polynomial:
		return "polynomial"
	}
	return "unknown"
}

// IE is an induction expression relative to one loop.
type IE struct {
	Class Class
	// Form is valid for Invariant (no h atom) and Linear (h atom with
	// constant coefficient = the slope). Atoms other than h are
	// preheader-materializable expressions.
	Form linform.Form
}

func (e IE) String() string {
	return fmt.Sprintf("%s[%s]", e.Class, e.Form)
}

// Analysis holds induction information for one function.
type Analysis struct {
	Fn     *ir.Func
	Forest *loops.Forest
	SSA    *ssa.Info

	hvars   map[*loops.Loop]*ir.Var
	loopOfH map[int]*loops.Loop // h variable ID -> its loop
	memo    map[memoKey]IE
	// loop side-effect summaries
	storesArr  map[*loops.Loop]map[int]bool // array IDs stored in loop
	assignedIn map[*loops.Loop]map[int]bool // var IDs assigned in loop
	hasCall    map[*loops.Loop]bool
}

type memoKey struct {
	val  *ssa.Value
	loop *loops.Loop
}

// Analyze runs induction analysis for every loop of f.
func Analyze(f *ir.Func, forest *loops.Forest, info *ssa.Info) *Analysis {
	a := &Analysis{
		Fn:         f,
		Forest:     forest,
		SSA:        info,
		hvars:      make(map[*loops.Loop]*ir.Var),
		loopOfH:    make(map[int]*loops.Loop),
		memo:       make(map[memoKey]IE),
		storesArr:  make(map[*loops.Loop]map[int]bool),
		assignedIn: make(map[*loops.Loop]map[int]bool),
		hasCall:    make(map[*loops.Loop]bool),
	}
	for _, l := range forest.Loops {
		stores := make(map[int]bool)
		assigned := make(map[int]bool)
		for b := range l.Blocks {
			for _, st := range b.Stmts {
				switch st := st.(type) {
				case *ir.StoreStmt:
					stores[st.Arr.ID] = true
				case *ir.AssignStmt:
					assigned[st.Dst.ID] = true
				case *ir.CallStmt:
					a.hasCall[l] = true
				}
			}
		}
		a.storesArr[l] = stores
		a.assignedIn[l] = assigned
	}
	// Effects in inner loops affect outer loops too.
	for _, l := range forest.Loops {
		for p := l.Parent; p != nil; p = p.Parent {
			if a.hasCall[l] {
				a.hasCall[p] = true
			}
			for id := range a.storesArr[l] {
				a.storesArr[p][id] = true
			}
			for id := range a.assignedIn[l] {
				a.assignedIn[p][id] = true
			}
		}
	}
	return a
}

// LoopStableTerms reports whether the value every atom of terms reads is
// the same at every point of loop l (no assignment to its variables, no
// store to its arrays, no interfering call inside l). The loop's own
// basic variable h is exempt: its in-loop defs are exactly the iteration
// count the terms mean to read. Checks placed inside the loop body (INX
// rewriting) require this; checks hoisted to the preheader only require
// preheader stability, which IE construction already guarantees.
func (a *Analysis) LoopStableTerms(l *loops.Loop, terms []ir.CheckTerm) bool {
	assigned := a.assignedIn[l]
	ok := true
	for _, t := range terms {
		ir.WalkExpr(t.Atom, func(x ir.Expr) {
			switch x := x.(type) {
			case *ir.VarRef:
				if a.hvars[l] == x.Var {
					return
				}
				if assigned[x.Var.ID] || (a.hasCall[l] && x.Var.Global) {
					ok = false
				}
			case *ir.Load:
				if a.storesArr[l][x.Arr.ID] || (a.hasCall[l] && x.Arr.Global) {
					ok = false
				}
			}
		})
	}
	return ok
}

// HVar returns the virtual basic loop variable h of l, creating it on
// first use. The variable is registered with the function so it can be
// materialized (h=0 in the preheader, h=h+1 at each latch) when INX
// checks are placed in the loop body.
func (a *Analysis) HVar(l *loops.Loop) *ir.Var {
	if v, ok := a.hvars[l]; ok {
		return v
	}
	v := a.Fn.NewTemp(fmt.Sprintf("h.b%d", l.Header.ID), ir.Int)
	a.hvars[l] = v
	a.loopOfH[v.ID] = l
	return v
}

// ieOfHVar classifies the basic variable of loop l2 relative to loop l:
// linear (slope 1) for l itself, invariant for ancestors of l (an outer
// h does not change while an inner loop runs), unknown otherwise.
func (a *Analysis) ieOfHVar(h *ir.Var, l2, l *loops.Loop) IE {
	if l2 == l {
		return IE{Class: Linear, Form: linform.Form{
			Terms: []ir.CheckTerm{{Coef: 1, Atom: &ir.VarRef{Var: h}}},
		}}
	}
	for anc := l.Parent; anc != nil; anc = anc.Parent {
		if anc == l2 {
			return IE{Class: Invariant, Form: linform.Form{
				Terms: []ir.CheckTerm{{Coef: 1, Atom: &ir.VarRef{Var: h}}},
			}}
		}
	}
	return IE{Class: Unknown}
}

// IsHVar reports whether v is the basic loop variable of l.
func (a *Analysis) IsHVar(l *loops.Loop, v *ir.Var) bool {
	return a.hvars[l] == v
}

// hKey returns the atom key of l's h variable.
func (a *Analysis) hKey(l *loops.Loop) string {
	return ir.Key(&ir.VarRef{Var: a.HVar(l)})
}

// SlopeOf splits an IE form into (slope of h, rest without h).
func (a *Analysis) SlopeOf(l *loops.Loop, f linform.Form) (int64, linform.Form) {
	k := a.hKey(l)
	return f.CoefOf(k), f.Without(k)
}

// ---------------------------------------------------------------------------
// IE computation

// IEOfExpr computes the induction expression of an in-body expression e
// relative to loop l. The VarRef occurrences of e must belong to the
// function body (the SSA overlay must know them).
func (a *Analysis) IEOfExpr(e ir.Expr, l *loops.Loop) IE {
	f := linform.Decompose(e)
	acc := linform.Form{Const: f.Const}
	cls := Invariant
	for _, t := range f.Terms {
		var ie IE
		if vr, ok := t.Atom.(*ir.VarRef); ok {
			use := a.SSA.UseOf[vr]
			if use == nil {
				// Expression not part of the function body (e.g. a
				// synthesized expression): fall back to treating the
				// variable as opaque.
				ie = a.opaqueAtomIE(t.Atom, l)
			} else {
				ie = a.ieOfValue(use, l)
			}
		} else {
			ie = a.opaqueAtomIE(t.Atom, l)
		}
		if ie.Class == Polynomial || ie.Class == Unknown {
			return IE{Class: ie.Class}
		}
		if ie.Class == Linear {
			cls = Linear
		}
		acc = acc.Add(ie.Form.Scale(t.Coef))
	}
	// Adding linear parts may cancel the slope.
	if cls == Linear {
		if slope, _ := a.SlopeOf(l, acc); slope == 0 {
			cls = Invariant
		}
	}
	return IE{Class: cls, Form: acc}
}

// IEOfValue computes the induction expression of an SSA value relative
// to loop l (exported for the INX check rewriter).
func (a *Analysis) IEOfValue(v *ssa.Value, l *loops.Loop) IE {
	return a.ieOfValue(v, l)
}

// IEOfOpaqueAtom classifies a non-affine atom relative to loop l
// (exported for the INX check rewriter).
func (a *Analysis) IEOfOpaqueAtom(atom ir.Expr, l *loops.Loop) IE {
	return a.opaqueAtomIE(atom, l)
}

// IEOfFormAt computes the combined induction expression of canonical
// check terms as read at a program point whose variable values are vals
// (typically ssa.Info.OutValues[loop.Header], i.e. loop-body entry). It
// is used to classify whole check families for preheader insertion.
func (a *Analysis) IEOfFormAt(terms []ir.CheckTerm, l *loops.Loop, vals map[int]*ssa.Value) IE {
	acc := linform.Form{}
	cls := Invariant
	for _, t := range terms {
		var ie IE
		if vr, ok := t.Atom.(*ir.VarRef); ok {
			if l2 := a.loopOfH[vr.Var.ID]; l2 != nil {
				ie = a.ieOfHVar(vr.Var, l2, l)
			} else if v := vals[vr.Var.ID]; v != nil {
				ie = a.ieOfValue(v, l)
			} else {
				return IE{Class: Unknown}
			}
		} else {
			ie = a.opaqueAtomIEAt(t.Atom, l, vals)
		}
		if ie.Class == Polynomial || ie.Class == Unknown {
			return IE{Class: ie.Class}
		}
		if ie.Class == Linear {
			cls = Linear
		}
		acc = acc.Add(ie.Form.Scale(t.Coef))
	}
	if cls == Linear {
		if slope, _ := a.SlopeOf(l, acc); slope == 0 {
			cls = Invariant
		}
	}
	return IE{Class: cls, Form: acc}
}

// opaqueAtomIE classifies a non-VarRef atom (load, product, division,
// intrinsic call): it is invariant iff every variable it reads is
// preheader-stable and every array it loads is unmodified by the loop.
func (a *Analysis) opaqueAtomIE(atom ir.Expr, l *loops.Loop) IE {
	return a.opaqueAtomIEAt(atom, l, nil)
}

// opaqueAtomIEAt is opaqueAtomIE with an optional explicit resolution of
// variable reads (for atoms cloned out of the function body, whose nodes
// the SSA overlay does not know).
func (a *Analysis) opaqueAtomIEAt(atom ir.Expr, l *loops.Loop, vals map[int]*ssa.Value) IE {
	ok := true
	ir.WalkExpr(atom, func(x ir.Expr) {
		switch x := x.(type) {
		case *ir.VarRef:
			use := a.SSA.UseOf[x]
			if use == nil && vals != nil {
				use = vals[x.Var.ID]
			}
			if use == nil || !a.stableAtPreheader(use, l) {
				ok = false
			}
		case *ir.Load:
			if a.storesArr[l][x.Arr.ID] || (a.hasCall[l] && x.Arr.Global) {
				ok = false
			}
		}
	})
	if a.hasCall[l] {
		// A call may modify any global read inside the atom.
		ir.WalkExpr(atom, func(x ir.Expr) {
			if vr, ok2 := x.(*ir.VarRef); ok2 && vr.Var.Global {
				ok = false
			}
		})
	}
	if !ok {
		return IE{Class: Unknown}
	}
	return IE{Class: Invariant, Form: linform.Form{
		Terms: []ir.CheckTerm{{Coef: 1, Atom: ir.CloneExpr(atom)}},
	}}
}

// stableAtPreheader reports whether SSA value v is both defined outside l
// and equal to the value its variable holds at the end of l's preheader,
// so that naming the variable at the preheader (or anywhere in the loop)
// reads exactly v.
func (a *Analysis) stableAtPreheader(v *ssa.Value, l *loops.Loop) bool {
	if l.Blocks[v.Block] {
		return false
	}
	return a.SSA.ValueAtEnd(l.Preheader, v.Var) == v
}

// ieOfValue computes the IE of SSA value v relative to loop l, memoized.
func (a *Analysis) ieOfValue(v *ssa.Value, l *loops.Loop) IE {
	key := memoKey{v, l}
	if ie, ok := a.memo[key]; ok {
		return ie
	}
	// Mark in-progress: hitting this key again means an unrecognized
	// cycle (the recognized mu-cycle is solved explicitly below).
	a.memo[key] = IE{Class: Unknown}
	ie := a.computeIE(v, l)
	a.memo[key] = ie
	return ie
}

func (a *Analysis) computeIE(v *ssa.Value, l *loops.Loop) IE {
	// Defined outside the loop: invariant if preheader-stable.
	if !l.Blocks[v.Block] {
		// Fold through the defining expression when possible: constants
		// (m = 5 in Figure 2) and affine chains over values that are
		// themselves still current at the preheader (j = i + 1 in a DO
		// lowering). This lets induction expressions bottom out at
		// variables that are stable across the whole loop, not just the
		// preheader snapshot of the defined variable.
		if v.Kind == ssa.AssignDef {
			src := v.Stmt.(*ir.AssignStmt).Src
			if c, ok := src.(*ir.ConstInt); ok {
				return IE{Class: Invariant, Form: linform.Form{Const: c.V}}
			}
			if src.Type() == ir.Int {
				if ie := a.IEOfExpr(src, l); ie.Class == Invariant {
					return ie
				}
			}
		}
		if a.stableAtPreheader(v, l) {
			return IE{Class: Invariant, Form: linform.Form{
				Terms: []ir.CheckTerm{{Coef: 1, Atom: &ir.VarRef{Var: v.Var}}},
			}}
		}
		return IE{Class: Unknown}
	}

	switch v.Kind {
	case ssa.AssignDef:
		return a.IEOfExpr(v.Stmt.(*ir.AssignStmt).Src, l)

	case ssa.CallDef:
		return IE{Class: Unknown}

	case ssa.PhiDef:
		if v.Block == l.Header {
			return a.solveMu(v, l)
		}
		// Join inside the loop (or an inner loop header): invariant only
		// if all operands agree.
		var first IE
		for i, arg := range v.Args {
			if arg == nil {
				return IE{Class: Unknown}
			}
			ie := a.ieOfValue(arg, l)
			if ie.Class == Polynomial || ie.Class == Unknown {
				return IE{Class: ie.Class}
			}
			if i == 0 {
				first = ie
			} else if ie.Class != first.Class || ie.Form.Key() != first.Form.Key() || ie.Form.Const != first.Form.Const {
				return IE{Class: Unknown}
			}
		}
		return first
	}
	return IE{Class: Unknown}
}

// solveMu recognizes the basic induction cycle around a loop-header phi:
//
//	mu = phi(init, tail)   with   tail = mu + step
//
// where init flows in from the preheader and step is a compile-time
// constant per back edge. The result is Linear: IE(init) + step·h.
// A step that is invariant-but-symbolic or itself linear yields
// Polynomial (recognized sequence, unusable for substitution).
func (a *Analysis) solveMu(mu *ssa.Value, l *loops.Loop) IE {
	var init *ssa.Value
	var tails []*ssa.Value
	for i, arg := range mu.Args {
		if arg == nil {
			return IE{Class: Unknown}
		}
		if l.Blocks[mu.Block.Preds[i]] {
			tails = append(tails, arg)
		} else {
			if init != nil && init != arg {
				return IE{Class: Unknown}
			}
			init = arg
		}
	}
	if init == nil || len(tails) == 0 {
		return IE{Class: Unknown}
	}

	// Seed the memo so references to mu inside the cycle resolve to the
	// symbolic atom μ (a fresh marker variable).
	muMarker := &ir.Var{Name: "µ", Type: ir.Int, ID: -1 - mu.ID}
	key := memoKey{mu, l}
	a.memo[key] = IE{Class: Linear, Form: linform.Form{
		Terms: []ir.CheckTerm{{Coef: 1, Atom: &ir.VarRef{Var: muMarker}}},
	}}

	muKey := ir.Key(&ir.VarRef{Var: muMarker})
	step := int64(0)
	polynomial := false
	for i, tail := range tails {
		// Clear tail memos so they re-resolve against the seeded mu.
		delete(a.memo, memoKey{tail, l})
		ie := a.ieOfValue(tail, l)
		delete(a.memo, memoKey{tail, l})
		if ie.Class == Unknown {
			a.memo[key] = IE{Class: Unknown}
			return IE{Class: Unknown}
		}
		if ie.Class == Polynomial {
			polynomial = true
			continue
		}
		if ie.Form.CoefOf(muKey) != 1 {
			a.memo[key] = IE{Class: Unknown}
			return IE{Class: Unknown}
		}
		rest := ie.Form.Without(muKey)
		if !rest.IsConst() {
			// Symbolic or h-dependent step: recognized but not linear.
			polynomial = true
			continue
		}
		if i > 0 && rest.Const != step {
			// Different steps on different back edges.
			a.memo[key] = IE{Class: Unknown}
			return IE{Class: Unknown}
		}
		step = rest.Const
	}
	if polynomial {
		a.memo[key] = IE{Class: Polynomial}
		return IE{Class: Polynomial}
	}

	initIE := a.ieOfValue(init, l)
	if initIE.Class != Invariant {
		a.memo[key] = IE{Class: Unknown}
		return IE{Class: Unknown}
	}
	if step == 0 {
		res := IE{Class: Invariant, Form: initIE.Form}
		a.memo[key] = res
		return res
	}
	h := linform.Form{Terms: []ir.CheckTerm{{Coef: step, Atom: &ir.VarRef{Var: a.HVar(l)}}}}
	res := IE{Class: Linear, Form: initIE.Form.Add(h)}
	a.memo[key] = res
	return res
}

// ---------------------------------------------------------------------------
// Trip counts and guards

// TripCount returns the symbolic trip count max(0, T) of a counted loop
// as the form T, with ok=false when the loop is not a DO loop or the trip
// count is not expressible (non-unit step with symbolic bounds).
// The form's atoms are valid at the end of the loop preheader.
func (a *Analysis) TripCount(l *loops.Loop) (linform.Form, bool) {
	d := l.Do
	if d == nil {
		return linform.Form{}, false
	}
	lo := linform.Decompose(d.Lo)
	hi := linform.Decompose(d.Limit)
	switch {
	case d.Step == 1:
		return hi.Sub(lo).Add(linform.Form{Const: 1}), true
	case d.Step == -1:
		return lo.Sub(hi).Add(linform.Form{Const: 1}), true
	case lo.IsConst() && hi.IsConst():
		var t int64
		if d.Step > 0 {
			t = (hi.Const - lo.Const + d.Step) / d.Step
		} else {
			t = (lo.Const - hi.Const - d.Step) / (-d.Step)
		}
		if t < 0 {
			t = 0
		}
		return linform.Form{Const: t}, true
	}
	return linform.Form{}, false
}

// GuardExpr returns the loop-entry guard "trip count > 0" as an IR
// expression over preheader-visible values, or (nil, true) when the loop
// provably executes at least once, or (nil, false) for non-DO loops.
func (a *Analysis) GuardExpr(l *loops.Loop) (ir.Expr, bool) {
	d := l.Do
	if d == nil {
		return nil, false
	}
	lo := linform.Decompose(d.Lo)
	hi := linform.Decompose(d.Limit)
	if lo.IsConst() && hi.IsConst() {
		if (d.Step > 0 && lo.Const <= hi.Const) || (d.Step < 0 && lo.Const >= hi.Const) {
			return nil, true // always executes
		}
		// Zero-trip loop: hoisting would be useless; signal "no guard
		// available" so callers skip it.
		return nil, false
	}
	op := ir.OpLe
	if d.Step < 0 {
		op = ir.OpGe
	}
	return &ir.Bin{Op: op, L: ir.CloneExpr(d.Lo), R: ir.CloneExpr(d.Limit), Typ: ir.Bool}, true
}

// LastH returns the form of the final h value (trip−1), valid at the
// preheader, with ok=false when the trip count is unavailable.
func (a *Analysis) LastH(l *loops.Loop) (linform.Form, bool) {
	t, ok := a.TripCount(l)
	if !ok {
		return linform.Form{}, false
	}
	return t.Add(linform.Form{Const: -1}), true
}
