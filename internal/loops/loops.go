// Package loops identifies natural loops, builds the loop nesting forest,
// guarantees preheaders, and matches loops to the DO-loop metadata
// recorded at lowering time (trip counts and basic loop variables feed the
// preheader insertion schemes of paper §3.3).
package loops

import (
	"sort"

	"nascent/internal/dom"
	"nascent/internal/ir"
)

// Loop is one natural loop.
type Loop struct {
	Header    *ir.Block
	Blocks    map[*ir.Block]bool // includes Header
	Latches   []*ir.Block        // sources of back edges
	Parent    *Loop
	Children  []*Loop
	Depth     int // 1 for outermost
	Preheader *ir.Block
	Do        *ir.DoLoopInfo // non-nil for counted loops
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// Exits returns the edges leaving the loop as (from, to) pairs, in
// deterministic order.
func (l *Loop) Exits() [][2]*ir.Block {
	var out [][2]*ir.Block
	blocks := l.sortedBlocks()
	for _, b := range blocks {
		for _, s := range b.Succs() {
			if !l.Blocks[s] {
				out = append(out, [2]*ir.Block{b, s})
			}
		}
	}
	return out
}

// SortedBlocks returns the loop's blocks ordered by block ID, for
// deterministic iteration.
func (l *Loop) SortedBlocks() []*ir.Block { return l.sortedBlocks() }

func (l *Loop) sortedBlocks() []*ir.Block {
	out := make([]*ir.Block, 0, len(l.Blocks))
	for b := range l.Blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Forest is the loop nesting forest of a function.
type Forest struct {
	fn *ir.Func
	// Loops in innermost-first order (children before parents), the
	// processing order for preheader insertion (paper §3.3).
	Loops  []*Loop
	byHead map[*ir.Block]*Loop
	inner  map[*ir.Block]*Loop // innermost loop containing each block
}

// LoopOf returns the innermost loop containing b, or nil.
func (f *Forest) LoopOf(b *ir.Block) *Loop { return f.inner[b] }

// ByHeader returns the loop with the given header block, or nil.
func (f *Forest) ByHeader(h *ir.Block) *Loop { return f.byHead[h] }

// Depth returns the loop nesting depth of b (0 outside all loops).
func (f *Forest) Depth(b *ir.Block) int {
	if l := f.inner[b]; l != nil {
		return l.Depth
	}
	return 0
}

// Analyze finds natural loops of f using the dominator tree, builds the
// nesting forest, creates missing preheaders (mutating the CFG), and
// attaches DO-loop metadata.
//
// Irreducible flow cannot occur: MF has only structured control flow.
func Analyze(f *ir.Func, t *dom.Tree) *Forest {
	forest := &Forest{
		fn:     f,
		byHead: make(map[*ir.Block]*Loop),
		inner:  make(map[*ir.Block]*Loop),
	}

	// Back edges: tail -> header where header dominates tail. Merge loops
	// sharing a header.
	for _, b := range t.Order() {
		for _, s := range b.Succs() {
			if t.Dominates(s, b) {
				l := forest.byHead[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
					forest.byHead[s] = l
				}
				l.Latches = append(l.Latches, b)
				collectBody(l, b)
			}
		}
	}

	// Collect loops ordered by decreasing body size => children before
	// parents is innermost-first when sizes differ; nesting fixed below.
	for _, l := range forest.byHead {
		forest.Loops = append(forest.Loops, l)
	}
	sort.Slice(forest.Loops, func(i, j int) bool {
		if len(forest.Loops[i].Blocks) != len(forest.Loops[j].Blocks) {
			return len(forest.Loops[i].Blocks) < len(forest.Loops[j].Blocks)
		}
		return forest.Loops[i].Header.ID < forest.Loops[j].Header.ID
	})

	// Nesting: the parent of l is the smallest loop strictly containing
	// l's header other than l itself.
	for i, l := range forest.Loops {
		for _, cand := range forest.Loops[i+1:] {
			if cand != l && cand.Blocks[l.Header] {
				l.Parent = cand
				cand.Children = append(cand.Children, l)
				break
			}
		}
	}
	for _, l := range forest.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}

	// Innermost loop per block.
	for _, l := range forest.Loops { // innermost first
		for b := range l.Blocks {
			if forest.inner[b] == nil {
				forest.inner[b] = l
			}
		}
	}

	// Preheaders and DO metadata.
	doByHeader := make(map[*ir.Block]*ir.DoLoopInfo)
	for _, d := range f.DoLoops {
		doByHeader[d.Header] = d
	}
	for _, l := range forest.Loops {
		l.Preheader = forest.ensurePreheader(f, l)
		if d := doByHeader[l.Header]; d != nil {
			l.Do = d
		}
	}
	return forest
}

func collectBody(l *Loop, tail *ir.Block) {
	if l.Blocks[tail] {
		return
	}
	l.Blocks[tail] = true
	for _, p := range tail.Preds {
		collectBody(l, p)
	}
}

// ensurePreheader returns the unique block outside the loop whose only
// successor is the header, creating one (and rewiring entry edges) if
// needed.
func (forest *Forest) ensurePreheader(f *ir.Func, l *Loop) *ir.Block {
	var outsidePreds []*ir.Block
	for _, p := range l.Header.Preds {
		if !l.Blocks[p] {
			outsidePreds = append(outsidePreds, p)
		}
	}
	if len(outsidePreds) == 1 {
		p := outsidePreds[0]
		if len(p.Succs()) == 1 {
			return p
		}
	}
	pre := f.NewBlock("preheader")
	pre.Term = &ir.Goto{Target: l.Header}
	for _, p := range outsidePreds {
		p.ReplaceSucc(l.Header, pre)
	}
	f.RecomputePreds()
	// The new preheader belongs to every loop enclosing this one.
	for anc := l.Parent; anc != nil; anc = anc.Parent {
		anc.Blocks[pre] = true
	}
	if l.Parent != nil {
		forest.inner[pre] = l.Parent
	}
	return pre
}
