package loops_test

import (
	"testing"

	"nascent/internal/dom"
	"nascent/internal/ir"
	"nascent/internal/loops"
	"nascent/internal/testutil"
)

func analyze(t *testing.T, src string) (*ir.Func, *loops.Forest) {
	t.Helper()
	p := testutil.BuildIR(t, src, false)
	f := p.Main()
	tree := dom.Compute(f)
	forest := loops.Analyze(f, tree)
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return f, forest
}

func TestSingleDoLoop(t *testing.T) {
	f, forest := analyze(t, `program p
  integer i
  do i = 1, 10
    j = i
  enddo
end
`)
	if len(forest.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(forest.Loops))
	}
	l := forest.Loops[0]
	dl := f.DoLoops[0]
	if l.Header != dl.Header {
		t.Error("loop header mismatch")
	}
	if l.Do != dl {
		t.Error("DO metadata not attached")
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d", l.Depth)
	}
	if !l.Contains(dl.BodyEntry) || !l.Contains(dl.Latch) || !l.Contains(dl.Header) {
		t.Error("loop body incomplete")
	}
	if l.Preheader != dl.Preheader {
		t.Errorf("preheader b%d, want lowering preheader b%d", l.Preheader.ID, dl.Preheader.ID)
	}
}

func TestNestedLoopsForest(t *testing.T) {
	f, forest := analyze(t, `program p
  integer i, j, k
  do i = 1, 4
    do j = 1, 4
      do k = 1, 4
        s = s + 1.0
      enddo
    enddo
  enddo
end
`)
	if len(forest.Loops) != 3 {
		t.Fatalf("found %d loops, want 3", len(forest.Loops))
	}
	// Innermost-first ordering.
	if forest.Loops[0].Depth != 3 || forest.Loops[2].Depth != 1 {
		t.Errorf("depths = %d,%d,%d want 3,2,1",
			forest.Loops[0].Depth, forest.Loops[1].Depth, forest.Loops[2].Depth)
	}
	inner, mid, outer := forest.Loops[0], forest.Loops[1], forest.Loops[2]
	if inner.Parent != mid || mid.Parent != outer || outer.Parent != nil {
		t.Error("nesting chain wrong")
	}
	if len(outer.Children) != 1 || outer.Children[0] != mid {
		t.Error("children lists wrong")
	}
	// Inner blocks belong to all three loops.
	innerBody := f.DoLoops[2].BodyEntry
	if !inner.Contains(innerBody) || !mid.Contains(innerBody) || !outer.Contains(innerBody) {
		t.Error("inner body not contained in enclosing loops")
	}
}

func TestWhileLoopDetected(t *testing.T) {
	_, forest := analyze(t, `program p
  integer i
  i = 0
  while (i < 10)
    i = i + 1
  endwhile
end
`)
	if len(forest.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(forest.Loops))
	}
	l := forest.Loops[0]
	if l.Do != nil {
		t.Error("while loop must not have DO metadata")
	}
	if l.Preheader == nil {
		t.Error("while loop has no preheader")
	}
	if got := l.Preheader.Succs(); len(got) != 1 || got[0] != l.Header {
		t.Error("preheader does not feed the header")
	}
}

func TestSequentialLoopsShareNothing(t *testing.T) {
	f, forest := analyze(t, `program p
  integer i, j
  do i = 1, 4
    x = 1.0
  enddo
  do j = 1, 4
    y = 2.0
  enddo
end
`)
	if len(forest.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(forest.Loops))
	}
	a, b := forest.Loops[0], forest.Loops[1]
	if a.Parent != nil || b.Parent != nil {
		t.Error("sequential loops must not nest")
	}
	for blk := range a.Blocks {
		if b.Blocks[blk] {
			t.Errorf("block b%d shared by both loops", blk.ID)
		}
	}
	_ = f
}

func TestLoopExits(t *testing.T) {
	f, forest := analyze(t, `program p
  integer i
  do i = 1, 10
    j = i
  enddo
end
`)
	l := forest.Loops[0]
	exits := l.Exits()
	if len(exits) != 1 {
		t.Fatalf("got %d exits, want 1", len(exits))
	}
	if exits[0][0] != f.DoLoops[0].Header {
		t.Error("exit should leave from the header")
	}
	if l.Contains(exits[0][1]) {
		t.Error("exit target inside loop")
	}
}

func TestLoopOfAndDepth(t *testing.T) {
	f, forest := analyze(t, `program p
  integer i, j
  do i = 1, 4
    do j = 1, 4
      s = s + 1.0
    enddo
  enddo
  k = 1
end
`)
	innerBody := f.DoLoops[1].BodyEntry
	if forest.Depth(innerBody) != 2 {
		t.Errorf("inner body depth = %d, want 2", forest.Depth(innerBody))
	}
	if forest.Depth(f.Entry()) != 0 {
		t.Error("entry should be outside all loops")
	}
	if forest.LoopOf(innerBody) != forest.Loops[0] {
		t.Error("LoopOf(inner body) is not innermost loop")
	}
	// The inner loop's preheader lives inside the outer loop.
	if forest.LoopOf(forest.Loops[0].Preheader) != forest.Loops[1] {
		t.Error("inner preheader should belong to outer loop")
	}
}

func TestPreheaderCreatedForMultiEntryEdges(t *testing.T) {
	// A while loop whose header is reached from two places: if/else join
	// then loop — after critical edge splitting the header still has a
	// unique outside pred path, but construct guarantees a preheader
	// either way.
	p := testutil.BuildIR(t, `program p
  integer i
  if (k > 0) then
    i = 0
  else
    i = 5
  endif
  while (i < 10)
    i = i + 1
  endwhile
end
`, false)
	f := p.Main()
	tree := dom.Compute(f)
	forest := loops.Analyze(f, tree)
	l := forest.Loops[0]
	if l.Preheader == nil {
		t.Fatal("no preheader")
	}
	if succ := l.Preheader.Succs(); len(succ) != 1 || succ[0] != l.Header {
		t.Error("preheader must have the header as its only successor")
	}
	if l.Blocks[l.Preheader] {
		t.Error("preheader must be outside the loop")
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestByHeaderAndExitsNested(t *testing.T) {
	f, forest := analyze(t, `program p
  integer i, j
  do i = 1, 5
    do j = 1, 5
      s = s + 1.0
    enddo
  enddo
end
`)
	inner := forest.ByHeader(f.DoLoops[1].Header)
	outer := forest.ByHeader(f.DoLoops[0].Header)
	if inner == nil || outer == nil {
		t.Fatal("ByHeader failed")
	}
	if forest.ByHeader(f.Entry()) != nil {
		t.Error("entry is not a loop header")
	}
	// The inner loop's exit edge leads into the outer loop body.
	for _, e := range inner.Exits() {
		if !outer.Contains(e[1]) {
			t.Errorf("inner exit leaves the outer loop: b%d", e[1].ID)
		}
	}
	// SortedBlocks is sorted and complete.
	blocks := inner.SortedBlocks()
	if len(blocks) != len(inner.Blocks) {
		t.Error("SortedBlocks incomplete")
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i-1].ID >= blocks[i].ID {
			t.Error("SortedBlocks not sorted")
		}
	}
}
