package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"nascent"
)

func key(n byte) cacheKey {
	var k cacheKey
	k[0] = n
	return k
}

// TestCacheSingleflight: concurrent requests for one key run the
// compile exactly once; everyone blocks on the same entry and shares
// the result.
func TestCacheSingleflight(t *testing.T) {
	c := newCache(8)
	var fills atomic.Int32
	var wg sync.WaitGroup
	results := make([]*compiled, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, _, err := c.get(key(1), func() (*compiled, error) {
				fills.Add(1)
				return &compiled{engine: nascent.EngineTree}, nil
			})
			if err != nil {
				t.Errorf("get: %v", err)
			}
			results[i] = got
		}(i)
	}
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("compile ran %d times, want 1 (singleflight)", n)
	}
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("request %d got a different artifact pointer", i)
		}
	}
}

// TestCacheFailureCached: a failed compile is cached too — hammering a
// broken source must not buy CPU.
func TestCacheFailureCached(t *testing.T) {
	c := newCache(8)
	var fills atomic.Int32
	boom := errors.New("boom")
	fill := func() (*compiled, error) {
		fills.Add(1)
		return nil, boom
	}
	if _, _, err := c.get(key(2), fill); !errors.Is(err, boom) {
		t.Fatalf("first get err = %v", err)
	}
	_, hit, err := c.get(key(2), fill)
	if !errors.Is(err, boom) || !hit {
		t.Fatalf("second get err = %v hit = %v, want cached failure", err, hit)
	}
	if fills.Load() != 1 {
		t.Fatalf("failed compile reran %d times", fills.Load())
	}
}

// TestCacheLRUEviction: capacity bounds the entry count; the least
// recently used key is evicted first and recompiles on return.
func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	fillCount := map[byte]int{}
	fill := func(n byte) func() (*compiled, error) {
		return func() (*compiled, error) {
			fillCount[n]++
			return &compiled{}, nil
		}
	}
	c.get(key(1), fill(1))
	c.get(key(2), fill(2))
	c.get(key(1), fill(1)) // touch 1: now 2 is the LRU victim
	c.get(key(3), fill(3)) // evicts 2

	if st := c.stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries, 1 eviction", st)
	}
	// 1 survived; 2 was evicted and must recompile.
	c.get(key(1), fill(1))
	c.get(key(2), fill(2))
	if fillCount[1] != 1 {
		t.Errorf("key 1 compiled %d times, want 1 (still resident)", fillCount[1])
	}
	if fillCount[2] != 2 {
		t.Errorf("key 2 compiled %d times, want 2 (evicted once)", fillCount[2])
	}
}

// TestContentKeyDisambiguation: every input dimension must change the
// content address — no field-boundary aliasing between source and
// filename, and options/engine all participate.
func TestContentKeyDisambiguation(t *testing.T) {
	base := contentKey("src", "f.mf", nascent.Options{BoundsChecks: true}, nascent.EngineTree)
	variants := map[string]cacheKey{
		"source":   contentKey("src2", "f.mf", nascent.Options{BoundsChecks: true}, nascent.EngineTree),
		"filename": contentKey("src", "g.mf", nascent.Options{BoundsChecks: true}, nascent.EngineTree),
		"boundary": contentKey("srcf", ".mf", nascent.Options{BoundsChecks: true}, nascent.EngineTree),
		"checks":   contentKey("src", "f.mf", nascent.Options{}, nascent.EngineTree),
		"scheme":   contentKey("src", "f.mf", nascent.Options{BoundsChecks: true, Scheme: nascent.ALL}, nascent.EngineTree),
		"kind":     contentKey("src", "f.mf", nascent.Options{BoundsChecks: true, Kind: nascent.INX}, nascent.EngineTree),
		"impl":     contentKey("src", "f.mf", nascent.Options{BoundsChecks: true, Implications: nascent.ImplyNone}, nascent.EngineTree),
		"rotate":   contentKey("src", "f.mf", nascent.Options{BoundsChecks: true, RotateLoops: true}, nascent.EngineTree),
		"engine":   contentKey("src", "f.mf", nascent.Options{BoundsChecks: true}, nascent.EngineVM),
	}
	keys := map[cacheKey]string{base: "base"}
	for name, k := range variants {
		if prev, dup := keys[k]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		keys[k] = name
	}
}
