package service

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	"nascent"
	"nascent/internal/evalpool"
	"nascent/internal/fleet"
	"nascent/internal/guard"
	"nascent/internal/interp"
	"nascent/internal/oracle"
	"nascent/internal/progcache"
	"nascent/internal/report"
)

// validateSource enforces the presence and size limits on program text.
func (s *Server) validateSource(source string) *Error {
	if source == "" {
		return usageError("source is required")
	}
	if len(source) > s.cfg.MaxSourceBytes {
		return &Error{Class: ClassTooLarge, Status: http.StatusRequestEntityTooLarge, NaccExit: 2,
			Message: fmt.Sprintf("source exceeds %d bytes", s.cfg.MaxSourceBytes)}
	}
	return nil
}

// wireOptReport converts an optimizer report to wire form.
func wireOptReport(o *nascent.OptReport) *OptReport {
	if o == nil {
		return nil
	}
	return &OptReport{
		ChecksBefore:    o.ChecksBefore,
		ChecksAfter:     o.ChecksAfter,
		Inserted:        o.Inserted,
		EliminatedAvail: o.EliminatedAvail,
		EliminatedCover: o.EliminatedCover,
		EliminatedConst: o.EliminatedConst,
		TrapsInserted:   o.TrapsInserted,
		Diagnostics:     o.Diagnostics,
		Degraded:        o.Degraded,
	}
}

// classifyRunErr maps a supervised run failure to a typed wire error.
func classifyRunErr(err error) *Error {
	var poisoned *evalpool.PoisonedInputError
	if errors.As(err, &poisoned) {
		return &Error{
			Class:     ClassPoisoned,
			Message:   poisoned.Error(),
			Status:    http.StatusInternalServerError,
			NaccExit:  -1,
			ChaosSpec: poisoned.ChaosSpec,
			Attempts:  poisoned.Attempts,
		}
	}
	var res *interp.ResourceError
	if errors.As(err, &res) {
		status := http.StatusRequestTimeout
		return &Error{
			Class:    ClassResource,
			Message:  err.Error(),
			Status:   status,
			NaccExit: 4,
			Resource: res.Resource.String(),
		}
	}
	if errors.Is(err, guard.ErrInternal) {
		return &Error{Class: ClassInternal, Message: err.Error(), Status: http.StatusInternalServerError, NaccExit: -1}
	}
	// Untyped errors: the pool tags run-stage failures with "run:"; a
	// runtime fault of the program (nacc exit 1) is the tenant's
	// problem, anything else from the pipeline is a compile failure
	// (nacc exit 3).
	if strings.Contains(err.Error(), ": run: ") {
		return &Error{Class: ClassFault, Message: err.Error(), Status: http.StatusUnprocessableEntity, NaccExit: 1}
	}
	return &Error{Class: ClassCompile, Message: err.Error(), Status: http.StatusUnprocessableEntity, NaccExit: 3}
}

// classifyCompileErr maps a compile failure to a typed wire error.
func classifyCompileErr(err error) *Error {
	if errors.Is(err, guard.ErrInternal) {
		return &Error{Class: ClassInternal, Message: err.Error(), Status: http.StatusInternalServerError, NaccExit: -1}
	}
	return &Error{Class: ClassCompile, Message: err.Error(), Status: http.StatusUnprocessableEntity, NaccExit: 3}
}

// resolved is one validated, breaker-routed request configuration.
type resolved struct {
	source   string
	filename string
	opts     nascent.Options
	engine   nascent.Engine
	runCfg   nascent.RunConfig
	timeout  time.Duration
	degraded *Degraded
	// requested pair for breaker reporting (pre-degradation).
	reqScheme nascent.Scheme
	reqEngine nascent.Engine
	probe     bool
}

// resolve validates a run request, clamps its budget, and routes it
// through the circuit breaker.
func (s *Server) resolve(req *RunRequest) (*resolved, *Error) {
	if apiErr := s.validateSource(req.Source); apiErr != nil {
		return nil, apiErr
	}
	opts, apiErr := parseOptions(req.Options)
	if apiErr != nil {
		return nil, apiErr
	}
	engine, apiErr := parseEngine(req.Engine)
	if apiErr != nil {
		return nil, apiErr
	}
	runCfg, timeout, apiErr := s.clampBudget(req.Budget)
	if apiErr != nil {
		return nil, apiErr
	}
	r := &resolved{
		source:    req.Source,
		filename:  req.Filename,
		opts:      opts,
		engine:    engine,
		runCfg:    runCfg,
		timeout:   timeout,
		reqScheme: opts.Scheme,
		reqEngine: engine,
	}
	degraded, probe := s.breaker.allow(opts.Scheme, engine)
	r.probe = probe
	if degraded {
		// A tripped top tier degrades down the ladder, not to the floor:
		// vmjit and tiered fall to the guard/deopt switch VM (vmrce),
		// vmrce to the optimized switch VM (vmopt) — identical
		// observables, a tier's worth of speed each step — skipping any
		// rung whose own circuit is open; when the whole ladder is open
		// the reference configuration serves.
		toScheme, toEngine := nascent.Naive, nascent.EngineTree
		switch {
		case (engine == nascent.EngineVMJit || engine == nascent.EngineTiered) &&
			!s.breaker.isOpen(opts.Scheme, nascent.EngineVMRCE):
			toScheme, toEngine = opts.Scheme, nascent.EngineVMRCE
		case (engine == nascent.EngineVMJit || engine == nascent.EngineTiered ||
			engine == nascent.EngineVMRCE) &&
			!s.breaker.isOpen(opts.Scheme, nascent.EngineVMOpt):
			toScheme, toEngine = opts.Scheme, nascent.EngineVMOpt
		}
		r.degraded = &Degraded{
			FromScheme: opts.Scheme.String(),
			FromEngine: engine.String(),
			ToScheme:   toScheme.String(),
			ToEngine:   toEngine.String(),
			Reason:     "circuit open: repeated quarantines on this (scheme, engine) pair",
		}
		r.opts.Scheme = toScheme
		r.engine = toEngine
	}
	return r, nil
}

// handleCompile serves POST /compile: compile (through the cache) and
// report what the optimizer did, without running.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.nCompile.Add(1)
	var req CompileRequest
	if apiErr := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	rr := RunRequest{CompileRequest: req}
	res, apiErr := s.resolve(&rr)
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	release, apiErr := s.admit(r.Context())
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	defer release()

	c, key, hit, err := s.compile(res.source, res.filename, res.opts, res.engine)
	s.breaker.report(res.reqScheme, res.reqEngine, res.probe, false)
	if err != nil {
		s.fail(w, classifyCompileErr(err))
		return
	}
	writeJSON(w, http.StatusOK, s.compileResponse(c, key, hit, res))
}

func (s *Server) compileResponse(c *compiled, key cacheKey, hit bool, res *resolved) CompileResponse {
	return CompileResponse{
		CacheKey:     key.String(),
		CacheHit:     hit,
		Scheme:       res.opts.Scheme.String(),
		Engine:       res.engine.String(),
		StaticChecks: c.staticChecks,
		Opt:          wireOptReport(c.opt),
		Degraded:     res.degraded,
	}
}

// handleRun serves POST /run: compile through the cache, execute under
// the supervised pool with the clamped budget and deadline.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.nRun.Add(1)
	var req RunRequest
	if apiErr := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	res, apiErr := s.resolve(&req)
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	release, apiErr := s.admit(r.Context())
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	defer release()

	resp, apiErr := s.execute(r, res, req.NoCache, "run")
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// execute runs one resolved request to completion under supervision.
// Admission must already be held.
func (s *Server) execute(r *http.Request, res *resolved, noCache bool, jobName string) (*RunResponse, *Error) {
	ctx, cancel := s.runCtx(r, res.timeout)
	defer cancel()

	job := evalpool.Job{
		Name:     jobName,
		Source:   res.source,
		Filename: res.filename,
		Opts:     res.opts,
		Run:      res.runCfg,
	}
	job.Run.Engine = res.engine

	var (
		c   *compiled
		key cacheKey
		hit bool
		err error
	)
	if noCache {
		// Drills bypass the cache AND the pool's frontend memo (unique
		// filename per drill) so injection reaches every compile stage
		// inside the supervised attempt.
		key = contentKey(res.source, res.filename, res.opts, res.engine)
	} else {
		c, key, hit, err = s.compile(res.source, res.filename, res.opts, res.engine)
		if err != nil {
			s.breaker.report(res.reqScheme, res.reqEngine, res.probe, false)
			return nil, classifyCompileErr(err)
		}
		job.Precompiled = c
	}

	result := s.pool.SubmitCtx(ctx, job)
	abnormal := errors.Is(result.Err, evalpool.ErrPoisoned)
	s.breaker.report(res.reqScheme, res.reqEngine, res.probe, abnormal)
	if result.Err != nil {
		return nil, classifyRunErr(result.Err)
	}
	if result.Attempts > 1 {
		s.nHealed.Add(1)
	}

	if c == nil {
		// no-cache path: the pool compiled it; synthesize the compile
		// section from the job's own program.
		c = &compiled{prog: result.Prog, engine: res.engine}
		if result.Prog != nil {
			c.staticChecks = result.Prog.StaticChecks()
			c.opt = result.Prog.Opt
		}
	}
	resp := &RunResponse{
		Compile:      s.compileResponse(c, key, hit, res),
		Output:       result.Res.Output,
		Instructions: result.Res.Instructions,
		Checks:       result.Res.Checks,
		Trapped:      result.Res.Trapped,
		TrapNote:     result.Res.TrapNote,
		TrapClass:    string(result.Res.TrapClass),
		Attempts:     result.Attempts,
	}
	if resp.Trapped {
		resp.NaccExit = 1
	}
	if jobName == "run" {
		// Organic /run traffic only: drills run under armed injection
		// and would audit the fault, not the service.
		s.maybeAudit(res, resp)
	}
	return resp, nil
}

// handleVerify serves POST /verify: the differential soundness oracle
// over every scheme×kind×implication×rotation variant, with the
// engine-identity sweep for bytecode engines.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.nVerify.Add(1)
	var req VerifyRequest
	if apiErr := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	if apiErr := s.validateSource(req.Source); apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	engine, apiErr := parseEngine(req.Engine)
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	release, apiErr := s.admit(r.Context())
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	defer release()

	ctx, cancel := s.runCtx(r, s.cfg.Ceilings.MaxTimeout)
	defer cancel()

	cfg := oracle.Config{Jobs: runtime.GOMAXPROCS(0)}
	// Every oracle variant runs under the server ceilings: a verify of a
	// pathological program must exhaust a budget, not the service.
	cfg.Run, _, _ = s.clampBudget(Budget{})
	cfg.Run.Context = ctx
	if engine != nascent.EngineTree {
		// Identity-sweep every engine up to the requested tier, in
		// registry order: verifying vmjit also cross-checks the tiers it
		// promotes through.
		for _, e := range nascent.AllEngines() {
			if e <= engine {
				cfg.Engines = append(cfg.Engines, e)
			}
		}
	}
	rep, err := oracle.Verify(req.Source, cfg)
	if err != nil {
		if errors.Is(err, nascent.ErrResourceExhausted) {
			s.fail(w, classifyRunErr(err))
			return
		}
		s.fail(w, classifyCompileErr(err))
		return
	}
	resp := VerifyResponse{OK: rep.OK(), Summary: rep.Summary()}
	for _, d := range rep.Divergences {
		resp.Divergences = append(resp.Divergences, d.String())
	}
	if !resp.OK {
		resp.NaccExit = 5
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReport serves GET /report?table=1|2|3: the paper's tables,
// measured on the service's shared pool (front ends memoized across
// requests), as structured JSON with the canonical text rendering
// embedded.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.nReport.Add(1)
	table := 1
	if t := r.URL.Query().Get("table"); t != "" {
		switch t {
		case "1", "2", "3":
			table = int(t[0] - '0')
		default:
			s.fail(w, usageError("bad table %q (want 1, 2, or 3)", t))
			return
		}
	}
	engine, apiErr := parseEngine(r.URL.Query().Get("engine"))
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	release, apiErr := s.admit(r.Context())
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	defer release()

	// With a fleet configured, measurement runs shard across the worker
	// processes; table bytes are identical either way (the fleet
	// identity tests pin this), so the choice is purely operational.
	var runner *report.Runner
	if s.fleet != nil {
		runner = report.NewOnEvaluator(s.fleet, report.Config{Engine: engine})
	} else {
		runner = report.NewOnPool(s.pool, report.Config{Engine: engine})
	}
	doc, err := runner.Doc(table)
	if err != nil && doc == nil {
		s.fail(w, &Error{Class: ClassInternal, Message: err.Error(), Status: http.StatusInternalServerError, NaccExit: -1})
		return
	}
	// Partial tables (some cells errored) still serve: the doc carries
	// the per-cell errors, mirroring rangebench's partial-results mode.
	writeJSON(w, http.StatusOK, doc)
}

// healthDoc is the body of GET /healthz.
type healthDoc struct {
	Status   string `json:"status"`
	UptimeMS int64  `json:"uptime_ms"`
	InFlight int    `json:"in_flight"`
	Queued   int64  `json:"queued"`
	// Fleet lists per-member worker health (id, score, version,
	// last-heartbeat age) when a fleet is configured.
	Fleet []fleet.MemberHealth `json:"fleet,omitempty"`
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.limiter.stats()
	doc := healthDoc{Status: "ok", UptimeMS: s.uptime().Milliseconds(), InFlight: st.InFlight, Queued: st.Queued}
	if s.fleet != nil {
		doc.Fleet = s.fleet.Health()
	}
	status := http.StatusOK
	if s.draining.Load() {
		doc.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, doc)
}

// metricsDoc is the body of GET /metrics.
type metricsDoc struct {
	UptimeMS  int64                    `json:"uptime_ms"`
	Draining  bool                     `json:"draining"`
	Requests  requestCounters          `json:"requests"`
	Admission limiterStats             `json:"admission"`
	Cache     CacheStats               `json:"cache"`
	DiskCache *progcache.Metrics       `json:"disk_cache,omitempty"`
	Breaker   breakerStats             `json:"breaker"`
	Pool      evalpool.MetricsSnapshot `json:"pool"`
	// Tiers lists per-entry tier state for vmjit/tiered programs
	// resolved through the service cache (the pool's own tier rows
	// appear under pool.tier_programs).
	Tiers []evalpool.TierProgramSnapshot `json:"tiers,omitempty"`
	// Fleet carries the worker fleet's soak counters and per-member
	// health when a fleet is configured.
	Fleet *fleet.Stats `json:"fleet,omitempty"`
	// Audit is the self-audit section (every=0 when disabled).
	Audit auditStats `json:"audit"`
	Chaos chaosDoc   `json:"chaos"`
}

type requestCounters struct {
	Compile   uint64 `json:"compile"`
	Run       uint64 `json:"run"`
	Verify    uint64 `json:"verify"`
	Report    uint64 `json:"report"`
	Drill     uint64 `json:"drill"`
	Errors4xx uint64 `json:"errors_4xx"`
	Errors5xx uint64 `json:"errors_5xx"`
	Healed    uint64 `json:"healed"`
	Panics    uint64 `json:"contained_panics"`
}

// handleMetrics serves GET /metrics: service counters plus the pool's
// supervision snapshot. It stays available while draining (operators
// watch it to confirm the drain).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var fleetStats *fleet.Stats
	if s.fleet != nil {
		st := s.fleet.Stats()
		fleetStats = &st
	}
	writeJSON(w, http.StatusOK, metricsDoc{
		UptimeMS: s.uptime().Milliseconds(),
		Draining: s.draining.Load(),
		Requests: requestCounters{
			Compile:   s.nCompile.Load(),
			Run:       s.nRun.Load(),
			Verify:    s.nVerify.Load(),
			Report:    s.nReport.Load(),
			Drill:     s.nDrill.Load(),
			Errors4xx: s.nErr4xx.Load(),
			Errors5xx: s.nErr5xx.Load(),
			Healed:    s.nHealed.Load(),
			Panics:    s.nPanics.Load(),
		},
		Admission: s.limiter.stats(),
		Cache:     s.cache.stats(),
		DiskCache: s.diskStats(),
		Breaker:   s.breaker.stats(),
		Pool:      s.pool.MetricsSnapshot(),
		Tiers:     s.cache.tierPrograms(),
		Fleet:     fleetStats,
		Audit:     s.auditSnapshot(),
		Chaos:     currentChaos(),
	})
}
