package service

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// FuzzServiceRequest throws arbitrary bodies at the request decoder and
// pipeline: malformed JSON, type confusion, oversized payloads, bogus
// engines and budgets. The contract under fuzz:
//
//   - the server never panics (the contained-panic counter stays zero);
//   - every failure is a typed error body with a non-empty class;
//   - nothing comes back 5xx — garbage input is always the tenant's
//     fault, classified 4xx (2xx for inputs that happen to be valid).
//
// Ceilings are tiny so accidentally-valid programs stay cheap.
func FuzzServiceRequest(f *testing.F) {
	seeds := []string{
		`{"source": "program p\n  real a(4)\n  integer i\n  do i = 1, 4\n    a(i) = 1.0\n  enddo\n  print a(1)\nend\n"}`,
		`{"source": "program p\nend\n", "engine": "vm", "options": {"scheme": "all"}}`,
		`{"source": ""}`,
		`{"source": 42}`,
		`{"source": "program p\nend\n", "bogus": true}`,
		`{"source": "program p\nend\n", "engine": "jit"}`,
		`{"source": "program p\nend\n", "budget": {"max_instructions": 999999999999}}`,
		`{"source": "program p\nend\n", "budget": {"timeout_ms": -5}}`,
		`{"source": "program p\nend\n"} trailing`,
		`{"source": "` + strings.Repeat("x", 3000) + `"}`,
		`not json at all`,
		`{`,
		``,
		`null`,
		`[]`,
		`{"source": "program p\n  real a(2)\n  a(9) = 1.0\nend\n"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	srv := New(Config{
		MaxBodyBytes:   2048,
		MaxSourceBytes: 1024,
		Ceilings: Ceilings{
			MaxInstructions: 200_000,
			MaxArrayCells:   4096,
			MaxOutputBytes:  4096,
			MaxTimeout:      2 * time.Second,
		},
		Logf: func(string, ...any) {},
	})

	f.Fuzz(func(t *testing.T, body []byte) {
		for _, path := range []string{"/run", "/compile", "/verify"} {
			req := httptest.NewRequest("POST", path, bytes.NewReader(body))
			w := httptest.NewRecorder()
			srv.Handler().ServeHTTP(w, req)

			if n := srv.nPanics.Load(); n != 0 {
				t.Fatalf("%s: contained panic (count %d) on body %q", path, n, body)
			}
			if w.Code >= 500 {
				t.Fatalf("%s: status %d on garbage input %q: %s", path, w.Code, body, w.Body.String())
			}
			if w.Code >= 400 {
				var eb errorBody
				if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error == nil {
					t.Fatalf("%s: %d response is not a typed error body: %q", path, w.Code, w.Body.String())
				}
				if eb.Error.Class == "" {
					t.Fatalf("%s: error body has empty class: %q", path, w.Body.String())
				}
				if eb.Error.Status != w.Code {
					t.Fatalf("%s: error.status %d != HTTP %d", path, eb.Error.Status, w.Code)
				}
			}
		}
	})
}
