// Package service is nascentd's HTTP layer: a hardened multi-tenant
// compile-and-eval server over the Kolte–Wolfe pipeline.
//
// The package promotes the pipeline's existing robustness machinery —
// typed resource budgets with cancellation (internal/interp), panic
// containment (internal/guard), the supervised self-healing evalpool,
// and deterministic fault injection (internal/chaos) — into a
// long-running service that survives heavy concurrent traffic:
//
//   - a content-addressed compiled-program cache (key = hash(source,
//     filename, options, engine)) with singleflight collapse of
//     duplicate in-flight compiles and LRU eviction (cache.go);
//   - admission control: a concurrency limiter plus a bounded wait
//     queue; excess load is shed with 429 + Retry-After instead of
//     degrading every request (limiter.go);
//   - a circuit breaker per (scheme, engine) pair that degrades to
//     naive/tree after repeated quarantines and probes for recovery
//     (breaker.go);
//   - per-request resource budgets clamped by server-side ceilings,
//     with deadline propagation from request context into both
//     engines' poll points;
//   - graceful drain: stop admitting, let in-flight requests finish or
//     cancel them at the drain deadline, flush metrics (server.go);
//   - in-service chaos drills gated behind a flag (drill.go).
//
// Every failure is a typed JSON error whose class mirrors the nacc
// exit-code taxonomy (docs/SERVICE.md).
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"nascent"
)

// Error classes. Each maps to one HTTP status and one nacc exit code
// (-1 when no nacc analog exists); see docs/SERVICE.md for the table.
const (
	// ClassUsage: malformed request (bad JSON, unknown field, bogus
	// scheme/kind/engine/budget). HTTP 400, nacc exit 2.
	ClassUsage = "usage"
	// ClassTooLarge: oversized body or source. HTTP 413, nacc exit 2.
	ClassTooLarge = "too_large"
	// ClassCompile: the program failed to parse, analyze, lower, or
	// optimize. HTTP 422, nacc exit 3.
	ClassCompile = "compile"
	// ClassResource: an execution budget was exhausted (instructions,
	// cells, deadline, cancellation). HTTP 408, nacc exit 4.
	ClassResource = "resource"
	// ClassFault: the program failed at run time outside a range check
	// (e.g. an out-of-range access in an unchecked build). HTTP 422,
	// nacc exit 1. A trapped CHECKED run is not an error: it is a 200
	// RunResponse with Trapped set.
	ClassFault = "fault"
	// ClassShed: admission control rejected the request under load.
	// HTTP 429 with Retry-After; no nacc analog.
	ClassShed = "shed"
	// ClassDraining: the server is shutting down. HTTP 503 with
	// Retry-After; no nacc analog.
	ClassDraining = "draining"
	// ClassPoisoned: the supervised pool quarantined the request after
	// repeated abnormal failures; the error carries the chaos replay
	// spec when injection produced it. HTTP 500.
	ClassPoisoned = "poisoned"
	// ClassInternal: a contained internal invariant violation. HTTP 500.
	ClassInternal = "internal"
	// ClassDrill: drill-specific failures (disabled endpoint HTTP 403,
	// busy registry HTTP 409, bad spec HTTP 400).
	ClassDrill = "drill"
)

// Error is the typed JSON error body of every non-2xx response.
type Error struct {
	// Class is one of the Class* constants.
	Class string `json:"class"`
	// Message is the human-readable failure description.
	Message string `json:"message"`
	// Status is the HTTP status the error was served with.
	Status int `json:"status"`
	// NaccExit is the exit code nacc would report for the same failure
	// (-1 when the failure has no CLI analog, e.g. load shedding).
	NaccExit int `json:"nacc_exit"`
	// Resource names the exhausted budget for ClassResource errors
	// ("instruction budget", "array cell budget", "deadline", "context").
	Resource string `json:"resource,omitempty"`
	// ChaosSpec is the replayable "seed:rate[:site]" injection spec for
	// ClassPoisoned errors produced under fault injection; feed it to
	// `nacc -chaos` / `rangebench -chaos` to reproduce the failure.
	ChaosSpec string `json:"chaos_spec,omitempty"`
	// RetryAfter is the suggested backoff in seconds for ClassShed and
	// ClassDraining errors (also sent as the Retry-After header).
	RetryAfter int `json:"retry_after,omitempty"`
	// Attempts is how many supervised attempts ran before a
	// ClassPoisoned quarantine.
	Attempts int `json:"attempts,omitempty"`
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Class, e.Message) }

// errorBody is the envelope every error response is wrapped in.
type errorBody struct {
	Error *Error `json:"error"`
}

func usageError(format string, args ...any) *Error {
	return &Error{Class: ClassUsage, Message: fmt.Sprintf(format, args...), Status: http.StatusBadRequest, NaccExit: 2}
}

// Options selects the backend configuration of a compile, by wire name.
// All fields are optional; the zero value is an unoptimized checked
// build ("naive" scheme, PRX checks, full implications).
type Options struct {
	// BoundsChecks inserts naive range checks before optimization
	// (default true — a service exists to measure checked programs; set
	// false explicitly for the unchecked baseline).
	BoundsChecks *bool `json:"bounds_checks,omitempty"`
	// Scheme: naive|NI|CS|LNI|SE|LI|LLS|ALL|MCM (default naive).
	Scheme string `json:"scheme,omitempty"`
	// Kind: PRX|INX (default PRX).
	Kind string `json:"kind,omitempty"`
	// Implications: full|none|cross (default full).
	Implications string `json:"implications,omitempty"`
	// RotateLoops converts while loops to guarded repeat loops before
	// optimization.
	RotateLoops bool `json:"rotate_loops,omitempty"`
}

// Budget bounds one run. Every field is clamped by the server-side
// ceilings (Config.Ceilings): a tenant may ask for less, never more.
type Budget struct {
	// MaxInstructions caps counted instructions (0 = server ceiling).
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
	// MaxArrayCells caps total array cells (0 = server ceiling).
	MaxArrayCells int64 `json:"max_array_cells,omitempty"`
	// MaxOutputBytes truncates output beyond this size (0 = server
	// ceiling).
	MaxOutputBytes int `json:"max_output_bytes,omitempty"`
	// TimeoutMS bounds wall clock; it becomes a context deadline
	// propagated into the engines' poll points (0 = server ceiling).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// CompileRequest is the body of POST /compile.
type CompileRequest struct {
	// Source is the MF program text (required).
	Source string `json:"source"`
	// Filename labels diagnostics (default "input.mf").
	Filename string `json:"filename,omitempty"`
	// Options selects the backend configuration.
	Options Options `json:"options,omitempty"`
	// Engine: tree|vm|vmopt|vmjit|tiered (default tree). Compilation
	// is engine-independent at the IR level, but the cache entry is
	// keyed by engine and bytecode engines precompile their program
	// eagerly; vmjit and tiered entries additionally carry per-entry
	// tier state (hotness counters, background recompiles).
	Engine string `json:"engine,omitempty"`
}

// RunRequest is the body of POST /run: a compile plus execution.
type RunRequest struct {
	CompileRequest
	// Budget bounds the run (clamped by server ceilings).
	Budget Budget `json:"budget,omitempty"`
	// NoCache bypasses the compiled-program cache for this request
	// (drills use it so injection reaches the compile stages).
	NoCache bool `json:"no_cache,omitempty"`
}

// VerifyRequest is the body of POST /verify.
type VerifyRequest struct {
	// Source is the MF program text (required).
	Source string `json:"source"`
	// Filename labels diagnostics.
	Filename string `json:"filename,omitempty"`
	// Engine selects the identity sweep: every engine up to and
	// including the named one participates (tree → just the
	// tree-walker; tiered → all five engines).
	Engine string `json:"engine,omitempty"`
}

// DrillRequest is the body of POST /drill: run one request under a
// scoped chaos injection spec.
type DrillRequest struct {
	// Spec is the deterministic injection spec "seed:rate[:site]".
	Spec string `json:"spec"`
	// Run is the request to execute under injection. Its cache is
	// bypassed and its frontend memo busted so injection can reach
	// every pipeline stage.
	Run RunRequest `json:"run"`
	// Name labels the drill's supervised job; worker-site injection is
	// keyed by it, so (spec, name) deterministically selects the fate
	// (default "drill").
	Name string `json:"name,omitempty"`
}

// OptReport mirrors nascent.OptReport on the wire.
type OptReport struct {
	ChecksBefore    int      `json:"checks_before"`
	ChecksAfter     int      `json:"checks_after"`
	Inserted        int      `json:"inserted"`
	EliminatedAvail int      `json:"eliminated_avail"`
	EliminatedCover int      `json:"eliminated_cover"`
	EliminatedConst int      `json:"eliminated_const"`
	TrapsInserted   int      `json:"traps_inserted"`
	Diagnostics     []string `json:"diagnostics,omitempty"`
	Degraded        []string `json:"degraded,omitempty"`
}

// Degraded reports that the circuit breaker served this request with a
// degraded configuration instead of the requested one.
type Degraded struct {
	FromScheme string `json:"from_scheme"`
	FromEngine string `json:"from_engine"`
	ToScheme   string `json:"to_scheme"`
	ToEngine   string `json:"to_engine"`
	Reason     string `json:"reason"`
}

// CompileResponse is the body of a successful POST /compile.
type CompileResponse struct {
	// CacheKey is the content address of the compiled program
	// (hex sha256 over source, filename, options, engine).
	CacheKey string `json:"cache_key"`
	// CacheHit reports the compile was served from the cache.
	CacheHit bool `json:"cache_hit"`
	// Scheme/Engine are the configuration actually compiled (they
	// differ from the request when Degraded is set).
	Scheme string `json:"scheme"`
	Engine string `json:"engine"`
	// StaticChecks counts check statements in the compiled program.
	StaticChecks int `json:"static_checks"`
	// Opt is the optimizer report (null for the naive scheme).
	Opt *OptReport `json:"opt,omitempty"`
	// Degraded is set when the circuit breaker rerouted the request.
	Degraded *Degraded `json:"degraded,omitempty"`
}

// RunResponse is the body of a successful POST /run. A range trap is a
// program outcome, not a service error: trapped runs are HTTP 200 with
// Trapped set and NaccExit 1.
type RunResponse struct {
	Compile CompileResponse `json:"compile"`
	// Output is the program's print output (byte-identical to nacc's
	// stdout for the same source and options).
	Output string `json:"output"`
	// Instructions / Checks are the dynamic counters.
	Instructions uint64 `json:"instructions"`
	Checks       uint64 `json:"checks"`
	// Trapped reports a failed range check or executed static trap;
	// TrapNote/TrapClass describe it.
	Trapped   bool   `json:"trapped"`
	TrapNote  string `json:"trap_note,omitempty"`
	TrapClass string `json:"trap_class,omitempty"`
	// Attempts is how many supervised attempts the run took (>1 means
	// the pool healed an abnormal failure by retrying).
	Attempts int `json:"attempts"`
	// NaccExit is the exit code nacc would report for this outcome
	// (0 clean, 1 trapped).
	NaccExit int `json:"nacc_exit"`
}

// VerifyResponse is the body of a successful POST /verify.
type VerifyResponse struct {
	OK bool `json:"ok"`
	// Summary is the oracle's one-line report.
	Summary string `json:"summary"`
	// Divergences lists soundness violations (empty when OK).
	Divergences []string `json:"divergences,omitempty"`
	// NaccExit is 0 on a clean pass, 5 on divergence.
	NaccExit int `json:"nacc_exit"`
}

// DrillResponse is the body of POST /drill.
type DrillResponse struct {
	// Spec echoes the injection spec the drill armed.
	Spec string `json:"spec"`
	// Fired is how many injections fired while the drill was armed.
	Fired uint64 `json:"fired"`
	// Healed reports the run succeeded after at least one supervised
	// retry — the self-healing path did its job.
	Healed bool `json:"healed"`
	// Attempts is the supervised attempt count of the drill's run.
	Attempts int `json:"attempts"`
	// Result is the run's outcome when it completed (possibly after
	// retries); nil when the run failed.
	Result *RunResponse `json:"result,omitempty"`
	// Error is the typed failure when the run did not complete; a
	// quarantine carries class "poisoned" and the replayable spec.
	Error *Error `json:"error,omitempty"`
}

// parse tables, mirroring cmd/nacc's flag spellings.

var schemeNames = map[string]nascent.Scheme{
	"naive": nascent.Naive, "ni": nascent.NI, "cs": nascent.CS,
	"lni": nascent.LNI, "se": nascent.SE, "li": nascent.LI,
	"lls": nascent.LLS, "all": nascent.ALL, "mcm": nascent.MCM,
}

var kindNames = map[string]nascent.CheckKind{"prx": nascent.PRX, "inx": nascent.INX}

var implNames = map[string]nascent.Implications{
	"full": nascent.ImplyFull, "none": nascent.ImplyNone, "cross": nascent.ImplyCross,
}

// parseOptions validates wire options into backend options.
func parseOptions(o Options) (nascent.Options, *Error) {
	opts := nascent.Options{BoundsChecks: true}
	if o.BoundsChecks != nil {
		opts.BoundsChecks = *o.BoundsChecks
	}
	if o.Scheme != "" {
		s, ok := schemeNames[strings.ToLower(o.Scheme)]
		if !ok {
			return opts, usageError("unknown scheme %q (want naive|NI|CS|LNI|SE|LI|LLS|ALL|MCM)", o.Scheme)
		}
		opts.Scheme = s
	}
	if o.Kind != "" {
		k, ok := kindNames[strings.ToLower(o.Kind)]
		if !ok {
			return opts, usageError("unknown check kind %q (want PRX|INX)", o.Kind)
		}
		opts.Kind = k
	}
	if o.Implications != "" {
		m, ok := implNames[strings.ToLower(o.Implications)]
		if !ok {
			return opts, usageError("unknown implication mode %q (want full|none|cross)", o.Implications)
		}
		opts.Implications = m
	}
	opts.RotateLoops = o.RotateLoops
	return opts, nil
}

// parseEngine validates a wire engine name (default tree).
func parseEngine(s string) (nascent.Engine, *Error) {
	if s == "" {
		return nascent.EngineTree, nil
	}
	e, err := nascent.ParseEngine(strings.ToLower(s))
	if err != nil {
		return nascent.EngineTree, usageError("unknown engine %q (want %s)", s, strings.Join(nascent.EngineNames(), "|"))
	}
	return e, nil
}

// decodeJSON reads and decodes one JSON request body with hard limits:
// the body is capped at maxBytes, unknown fields are rejected, and
// trailing garbage is an error. Every failure is a typed 4xx.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, into any) *Error {
	if r.Body == nil {
		return usageError("empty request body")
	}
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &Error{Class: ClassTooLarge, Status: http.StatusRequestEntityTooLarge, NaccExit: 2,
				Message: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
		}
		var syn *json.SyntaxError
		if errors.As(err, &syn) {
			return usageError("malformed JSON at offset %d: %v", syn.Offset, syn)
		}
		var ute *json.UnmarshalTypeError
		if errors.As(err, &ute) {
			return usageError("bad type for field %q: want %s", ute.Field, ute.Type)
		}
		return usageError("bad request body: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return usageError("trailing data after JSON body")
	}
	return nil
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes a typed error body (and Retry-After when set).
func writeError(w http.ResponseWriter, e *Error) {
	if e.Status == 0 {
		e.Status = http.StatusInternalServerError
	}
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	writeJSON(w, e.Status, errorBody{Error: e})
}
