package service

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestScrubberWiredThroughConfig: with ScrubInterval set, the server
// runs the disk cache's background scrubber — a bit-flipped entry is
// detected and unlinked without any request touching it — and Drain
// stops the scrubber cleanly.
func TestScrubberWiredThroughConfig(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) {
		c.ProgCacheDir = dir
		c.ScrubInterval = 10 * time.Millisecond
	})

	req := CompileRequest{Source: progOK, Options: Options{Scheme: "all"}, Engine: "vmopt"}
	var resp CompileResponse
	if w := do(t, s, "POST", "/compile", req, &resp); w.Code != http.StatusOK {
		t.Fatalf("compile status = %d, body %s", w.Code, w.Body.String())
	}
	path := filepath.Join(dir, resp.CacheKey+".npc")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("disk entry not written: %v", err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for s.diskStats().ScrubRemoved == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("scrubber never removed the corrupt entry: %+v", *s.diskStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still on disk: %v", err)
	}

	s.Drain(context.Background())
}
