package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// progSpin loops forever; only a budget, deadline, or cancellation
// stops it. Drain tests use it as a guaranteed in-flight request.
const progSpin = `program spin
  real a(2)
  integer i
  i = 1
  while (i > 0)
    a(1) = a(1) + 1.0
  endwhile
  print a(1)
end
`

// TestDrainGate: after Drain, guarded endpoints serve typed 503s with
// Retry-After, healthz reports draining, and metrics stays available.
func TestDrainGate(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.DrainTimeout = 100 * time.Millisecond })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Drain(ctx) // no in-flight work: returns promptly

	w := do(t, s, "POST", "/run", RunRequest{CompileRequest: CompileRequest{Source: progOK}}, nil)
	e := wantError(t, w, http.StatusServiceUnavailable, ClassDraining)
	if e.RetryAfter <= 0 || w.Header().Get("Retry-After") == "" {
		t.Error("draining response missing Retry-After")
	}

	var health struct {
		Status string `json:"status"`
	}
	w = do(t, s, "GET", "/healthz", nil, &health)
	if w.Code != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Errorf("healthz while draining = %d %q, want 503 draining", w.Code, health.Status)
	}

	var m metricsDoc
	w = do(t, s, "GET", "/metrics", nil, &m)
	if w.Code != http.StatusOK || !m.Draining {
		t.Errorf("metrics while draining = %d draining=%v, want 200 true", w.Code, m.Draining)
	}

	// Drain is idempotent.
	s.Drain(ctx)
}

// TestDrainCancelsInflight: a request still running at the drain
// deadline is cancelled at its next engine poll point and returns a
// typed resource error; Drain itself returns once the handler unwinds,
// and no goroutines leak.
func TestDrainCancelsInflight(t *testing.T) {
	base := runtime.NumGoroutine()
	s := newTestServer(t, func(c *Config) {
		c.DrainTimeout = 150 * time.Millisecond
		c.Ceilings.MaxTimeout = 30 * time.Second // per-request timeout must not win the race
	})

	raw, _ := json.Marshal(RunRequest{CompileRequest: CompileRequest{Source: progSpin}})
	respCh := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest("POST", "/run", bytes.NewReader(raw))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		respCh <- w
	}()

	// Wait until the spin request is admitted and executing.
	deadline := time.Now().Add(5 * time.Second)
	for s.limiter.stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("spin request never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Drain(dctx)
	elapsed := time.Since(start)
	if elapsed >= 10*time.Second {
		t.Fatalf("drain blocked for %v; deadline did not fire", elapsed)
	}

	w := <-respCh
	e := wantError(t, w, http.StatusRequestTimeout, ClassResource)
	if e.NaccExit != 4 {
		t.Errorf("cancelled in-flight run nacc_exit = %d, want 4", e.NaccExit)
	}
	waitGoroutines(t, base)
}

// TestDrainWaitsForFastInflight: a request that finishes before the
// drain deadline completes normally — draining never truncates work
// that can still finish in time.
func TestDrainWaitsForFastInflight(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.DrainTimeout = 5 * time.Second })

	// Hold a synthetic in-flight registration, start the drain, then
	// complete the work shortly after: Drain must wait for it.
	release, apiErr := s.admit(context.Background())
	if apiErr != nil {
		t.Fatalf("admit: %v", apiErr)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		release()
	}()
	start := time.Now()
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Drain(dctx)
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("drain returned in %v, before in-flight work completed", elapsed)
	}
}
