package service

import (
	"container/list"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"

	"nascent"
	"nascent/internal/evalpool"
	"nascent/internal/progcache"
	"nascent/internal/vm"
	"nascent/internal/vm/tier"
)

// cacheKey is the content address of one compiled program: sha256 over
// (source, filename, options, engine). The derivation lives in
// progcache.KeyOf — the in-memory cache and the disk cache share one
// address space, so a program compiled through either layer is the
// same entry to both.
type cacheKey = progcache.Key

// contentKey computes the cache key of one compile request.
func contentKey(source, filename string, opts nascent.Options, engine nascent.Engine) cacheKey {
	return progcache.KeyOf(source, filename, opts, engine)
}

// compiled is one cached compile artifact. For bytecode engines the
// vm.Program is compiled eagerly at fill time so every subsequent run
// skips straight to execution; for the tree engine runs interpret the
// shared immutable IR directly. Both are safe for concurrent Run calls.
//
// staticChecks and opt carry the compile-response metadata out of the
// frontend: a disk-cache warm start reconstructs them from the cache
// envelope with prog == nil, so nothing downstream may assume the IR
// is present for bytecode entries.
type compiled struct {
	prog         *nascent.Program
	vmProg       *vm.Program
	jit          *tier.JitHandle // vmjit entries: warm tier state per cache entry
	trd          *tier.Program   // tiered entries: hotness controller per cache entry
	engine       nascent.Engine
	staticChecks int
	opt          *nascent.OptReport
}

// Run executes the cached program under cfg; it satisfies
// evalpool.Runner so cache hits ride the pool's supervision unchanged.
// vmjit and tiered entries run through their tier handles, so repeated
// requests for the same cache entry warm the same counters and the
// closure tier compiles once per entry, in the background.
func (c *compiled) Run(cfg nascent.RunConfig) (nascent.RunResult, error) {
	switch {
	case c.jit != nil:
		return c.jit.Run(cfg)
	case c.trd != nil:
		return c.trd.Run(cfg)
	case c.vmProg != nil:
		return c.vmProg.Run(cfg)
	}
	return c.prog.RunWith(cfg)
}

// tierSnapshot returns the entry's tier state (zero Snapshot and false
// for non-tiered entries).
func (c *compiled) tierSnapshot() (tier.Snapshot, bool) {
	switch {
	case c.jit != nil:
		return c.jit.Snapshot(), true
	case c.trd != nil:
		return c.trd.Snapshot(), true
	}
	return tier.Snapshot{}, false
}

// cacheEntry is a once-guarded singleflight slot: the first request
// compiles, concurrent requests for the same key block on the same
// entry instead of duplicating the work. Failed compiles are cached
// too — recompiling a broken program cannot fix it, and a tenant
// hammering a bad source must not buy CPU with it.
type cacheEntry struct {
	once   sync.Once
	filled atomic.Bool // set after the fill publishes c/err
	c      *compiled
	err    error
	elem   *list.Element // LRU position; nil until linked
}

// Cache is the content-addressed compiled-program cache. All state is
// guarded by mu except the entries' once-guarded fill.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*cacheEntry
	lru     *list.List // front = most recent; values are cacheKey

	hits      uint64
	misses    uint64
	evictions uint64
}

// CacheStats is the wire form of the cache counters.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// newCache returns a cache holding at most max compiled programs
// (max <= 0 selects 256).
func newCache(max int) *Cache {
	if max <= 0 {
		max = 256
	}
	return &Cache{max: max, entries: make(map[cacheKey]*cacheEntry), lru: list.New()}
}

// get returns the compiled program for key, filling it with compile on
// first use. The second result reports a cache hit (an entry that was
// already filled when this request arrived; a request that blocked on
// another request's in-flight fill counts as a hit — the work was
// collapsed).
func (c *Cache) get(key cacheKey, compile func() (*compiled, error)) (*compiled, bool, error) {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
		e.elem = c.lru.PushFront(key)
		c.misses++
		c.evictLocked()
	} else {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
	}
	c.mu.Unlock()

	hit := true
	e.once.Do(func() {
		hit = false
		e.c, e.err = compile()
		e.filled.Store(true)
	})
	return e.c, hit, e.err
}

// evictLocked drops least-recently-used entries beyond capacity. An
// evicted in-flight entry is safe: requests already holding it keep
// their reference and complete; later requests start a fresh entry.
func (c *Cache) evictLocked() {
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		if back == nil {
			return
		}
		key := back.Value.(cacheKey)
		c.lru.Remove(back)
		if e := c.entries[key]; e != nil {
			e.elem = nil
			delete(c.entries, key)
		}
		c.evictions++
	}
}

// tierPrograms snapshots the tier state of every filled vmjit/tiered
// cache entry, sorted by key for a stable wire order. The rows share
// evalpool's wire type so operators read one schema whether a program
// warmed through the service cache or the pool's bytecode memo.
func (c *Cache) tierPrograms() []evalpool.TierProgramSnapshot {
	c.mu.Lock()
	type slot struct {
		key cacheKey
		ent *cacheEntry
	}
	slots := make([]slot, 0, len(c.entries))
	for k, e := range c.entries {
		slots = append(slots, slot{k, e})
	}
	c.mu.Unlock()

	var rows []evalpool.TierProgramSnapshot
	for _, s := range slots {
		// Only inspect filled entries; an in-flight fill's c is not
		// published yet and must not be raced (filled is stored after
		// c, so observing it true makes c safe to read).
		ent := s.ent
		if !ent.filled.Load() || ent.c == nil {
			continue
		}
		snap, ok := ent.c.tierSnapshot()
		if !ok {
			continue
		}
		rows = append(rows, evalpool.TierProgramSnapshot{
			Key:          hex.EncodeToString(s.key[:8]),
			Engine:       ent.c.engine.String(),
			Tier:         snap.Tier,
			Runs:         snap.Runs,
			Instructions: snap.Instrs,
			ProfiledRuns: snap.ProfiledRuns,
			Promotions:   snap.Promotions,
			Demotions:    snap.Demotions,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	return rows
}

// stats snapshots the cache counters.
func (c *Cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Capacity:  c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
