package service

import (
	"container/list"
	"sync"

	"nascent"
	"nascent/internal/progcache"
	"nascent/internal/vm"
)

// cacheKey is the content address of one compiled program: sha256 over
// (source, filename, options, engine). The derivation lives in
// progcache.KeyOf — the in-memory cache and the disk cache share one
// address space, so a program compiled through either layer is the
// same entry to both.
type cacheKey = progcache.Key

// contentKey computes the cache key of one compile request.
func contentKey(source, filename string, opts nascent.Options, engine nascent.Engine) cacheKey {
	return progcache.KeyOf(source, filename, opts, engine)
}

// compiled is one cached compile artifact. For bytecode engines the
// vm.Program is compiled eagerly at fill time so every subsequent run
// skips straight to execution; for the tree engine runs interpret the
// shared immutable IR directly. Both are safe for concurrent Run calls.
//
// staticChecks and opt carry the compile-response metadata out of the
// frontend: a disk-cache warm start reconstructs them from the cache
// envelope with prog == nil, so nothing downstream may assume the IR
// is present for bytecode entries.
type compiled struct {
	prog         *nascent.Program
	vmProg       *vm.Program
	engine       nascent.Engine
	staticChecks int
	opt          *nascent.OptReport
}

// Run executes the cached program under cfg; it satisfies
// evalpool.Runner so cache hits ride the pool's supervision unchanged.
func (c *compiled) Run(cfg nascent.RunConfig) (nascent.RunResult, error) {
	if c.vmProg != nil {
		return c.vmProg.Run(cfg)
	}
	return c.prog.RunWith(cfg)
}

// cacheEntry is a once-guarded singleflight slot: the first request
// compiles, concurrent requests for the same key block on the same
// entry instead of duplicating the work. Failed compiles are cached
// too — recompiling a broken program cannot fix it, and a tenant
// hammering a bad source must not buy CPU with it.
type cacheEntry struct {
	once sync.Once
	c    *compiled
	err  error
	elem *list.Element // LRU position; nil until linked
}

// Cache is the content-addressed compiled-program cache. All state is
// guarded by mu except the entries' once-guarded fill.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*cacheEntry
	lru     *list.List // front = most recent; values are cacheKey

	hits      uint64
	misses    uint64
	evictions uint64
}

// CacheStats is the wire form of the cache counters.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// newCache returns a cache holding at most max compiled programs
// (max <= 0 selects 256).
func newCache(max int) *Cache {
	if max <= 0 {
		max = 256
	}
	return &Cache{max: max, entries: make(map[cacheKey]*cacheEntry), lru: list.New()}
}

// get returns the compiled program for key, filling it with compile on
// first use. The second result reports a cache hit (an entry that was
// already filled when this request arrived; a request that blocked on
// another request's in-flight fill counts as a hit — the work was
// collapsed).
func (c *Cache) get(key cacheKey, compile func() (*compiled, error)) (*compiled, bool, error) {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
		e.elem = c.lru.PushFront(key)
		c.misses++
		c.evictLocked()
	} else {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
	}
	c.mu.Unlock()

	hit := true
	e.once.Do(func() {
		hit = false
		e.c, e.err = compile()
	})
	return e.c, hit, e.err
}

// evictLocked drops least-recently-used entries beyond capacity. An
// evicted in-flight entry is safe: requests already holding it keep
// their reference and complete; later requests start a fresh entry.
func (c *Cache) evictLocked() {
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		if back == nil {
			return
		}
		key := back.Value.(cacheKey)
		c.lru.Remove(back)
		if e := c.entries[key]; e != nil {
			e.elem = nil
			delete(c.entries, key)
		}
		c.evictions++
	}
}

// stats snapshots the cache counters.
func (c *Cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Capacity:  c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
