package service

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestWarmStart restarts the service against the same program-cache
// directory and requires the second process generation to serve
// /compile and /run for a known program entirely from disk — no
// frontend, byte-identical responses.
func TestWarmStart(t *testing.T) {
	dir := t.TempDir()
	mkServer := func() *Server {
		return newTestServer(t, func(c *Config) { c.ProgCacheDir = dir })
	}

	compileReq := CompileRequest{Source: progOK, Options: Options{Scheme: "lls"}, Engine: "vmopt"}
	runReq := RunRequest{CompileRequest: compileReq}

	// Generation 1: cold. Compile populates the disk cache.
	s1 := mkServer()
	var cold CompileResponse
	if w := do(t, s1, "POST", "/compile", compileReq, &cold); w.Code != http.StatusOK {
		t.Fatalf("cold compile: %d %s", w.Code, w.Body.String())
	}
	var coldRun RunResponse
	if w := do(t, s1, "POST", "/run", runReq, &coldRun); w.Code != http.StatusOK {
		t.Fatalf("cold run: %d %s", w.Code, w.Body.String())
	}
	m1 := s1.diskStats()
	if m1 == nil || m1.Puts == 0 {
		t.Fatalf("cold generation wrote nothing to disk: %+v", m1)
	}

	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache dir empty after cold start: %v", err)
	}

	// Generation 2: a fresh Server (empty memory cache, empty pool
	// memos) against the same directory.
	s2 := mkServer()
	var warm CompileResponse
	if w := do(t, s2, "POST", "/compile", compileReq, &warm); w.Code != http.StatusOK {
		t.Fatalf("warm compile: %d %s", w.Code, w.Body.String())
	}
	if warm.CacheHit {
		t.Error("warm compile claimed an in-memory hit in a fresh process")
	}
	m2 := s2.diskStats()
	if m2.Hits == 0 {
		t.Fatalf("warm generation never hit the disk cache: %+v", m2)
	}

	// The warm response must match the cold one field-for-field (modulo
	// the in-memory hit flag): same key, same static check count, same
	// optimizer report — all reconstructed from the envelope without
	// running the frontend.
	cold.CacheHit, warm.CacheHit = false, false
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm compile response diverges:\ncold: %+v\nwarm: %+v", cold, warm)
	}

	var warmRun RunResponse
	if w := do(t, s2, "POST", "/run", runReq, &warmRun); w.Code != http.StatusOK {
		t.Fatalf("warm run: %d %s", w.Code, w.Body.String())
	}
	coldRun.Compile.CacheHit, warmRun.Compile.CacheHit = false, false
	coldJSON, _ := json.Marshal(coldRun)
	warmJSON, _ := json.Marshal(warmRun)
	if string(coldJSON) != string(warmJSON) {
		t.Fatalf("warm run response diverges:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
}

// TestWarmStartCorruption damages the cached entry between
// generations: the warm server must fall back to a fresh compile,
// count the corruption, and still answer identically.
func TestWarmStartCorruption(t *testing.T) {
	dir := t.TempDir()
	compileReq := CompileRequest{Source: progOK, Options: Options{Scheme: "lls"}, Engine: "vm"}

	s1 := newTestServer(t, func(c *Config) { c.ProgCacheDir = dir })
	var cold CompileResponse
	if w := do(t, s1, "POST", "/compile", compileReq, &cold); w.Code != http.StatusOK {
		t.Fatalf("cold compile: %d %s", w.Code, w.Body.String())
	}

	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one cache entry, got %d (%v)", len(entries), err)
	}
	path := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, func(c *Config) { c.ProgCacheDir = dir })
	var warm CompileResponse
	if w := do(t, s2, "POST", "/compile", compileReq, &warm); w.Code != http.StatusOK {
		t.Fatalf("compile after corruption: %d %s", w.Code, w.Body.String())
	}
	m := s2.diskStats()
	if m.Corrupt != 1 || m.Hits != 0 {
		t.Fatalf("corruption not observed as such: %+v", m)
	}
	if m.Puts != 1 {
		t.Fatalf("recompile did not heal the entry: %+v", m)
	}
	cold.CacheHit, warm.CacheHit = false, false
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("post-corruption response diverges:\ncold: %+v\nwarm: %+v", cold, warm)
	}

	// Generation 3 reads the healed entry.
	s3 := newTestServer(t, func(c *Config) { c.ProgCacheDir = dir })
	if w := do(t, s3, "POST", "/compile", compileReq, &CompileResponse{}); w.Code != http.StatusOK {
		t.Fatalf("compile after heal: %d %s", w.Code, w.Body.String())
	}
	if m := s3.diskStats(); m.Hits != 1 {
		t.Fatalf("healed entry not served from disk: %+v", m)
	}
}
