package service

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"nascent"
	"nascent/internal/chaos"
	"nascent/internal/evalpool"
	"nascent/internal/fleet"
	"nascent/internal/progcache"
	"nascent/internal/vm"
	"nascent/internal/vm/tier"
)

// Config configures a Server. Every zero field selects a production
// default; Config{} is a usable server.
type Config struct {
	// MaxConcurrent bounds requests executing at once (default 16).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot; beyond it requests
	// are shed with 429 (default 64).
	MaxQueue int
	// CacheEntries bounds the compiled-program cache (default 256).
	CacheEntries int
	// ProgCacheDir enables the disk-backed program cache: compiled
	// bytecode programs are persisted there (content-addressed, atomic
	// writes) and warm starts skip the frontend entirely — a restarted
	// server serves /compile and /run for known programs without
	// parsing a line of source. Empty disables the disk layer. A
	// directory that cannot be created disables it with a logged
	// warning; the cache is an accelerator, never a correctness
	// dependency.
	ProgCacheDir string
	// MaxBodyBytes caps any request body (default 4 MiB).
	MaxBodyBytes int64
	// MaxSourceBytes caps one program's source text (default 1 MiB).
	MaxSourceBytes int

	// Ceilings clamp per-request budgets: a request may ask for less
	// than a ceiling, never more. Zero fields select the defaults
	// (500e6 instructions, 64 Mi cells, 1 MiB output, 30 s timeout).
	Ceilings Ceilings

	// DrainTimeout bounds graceful drain: in-flight requests past it
	// are cancelled at their next engine poll point (default 10 s).
	DrainTimeout time.Duration

	// AllowDrill enables POST /drill (chaos injection). Off by
	// default: arming fault injection is an operator decision.
	AllowDrill bool

	// BreakerThreshold / BreakerCooldown tune the (scheme, engine)
	// circuit breaker (defaults 3 consecutive quarantines, 30 s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// TierThresholds tune the tiered engine's promotion points (zero
	// fields select the tier package defaults). Hotness is process
	// state: cache entries — memory or disk — always start at the cold
	// tier, so thresholds only shape when a warm entry recompiles, never
	// what any run observes.
	TierThresholds tier.Thresholds

	// FleetWorkers, when > 0, shards /report measurement runs across
	// worker processes instead of the in-process pool; FleetCommand
	// builds the command for worker i (required then — nascentd
	// self-execs with -fleet-worker). A fleet that fails to start is
	// logged and disabled: /report falls back to the in-process pool.
	FleetWorkers int
	FleetCommand func(i int) *exec.Cmd
	// FleetHedgeAfter passes through to fleet.Config.HedgeAfter:
	// positive duplicates a still-pending fleet attempt after that
	// fixed delay, negative enables the adaptive (latency-EWMA-based)
	// hedging quantile, zero disables hedging.
	FleetHedgeAfter time.Duration

	// AuditEvery > 0 enables the in-service differential self-audit:
	// every AuditEvery-th successful /run on a non-tree engine is
	// re-executed on the tree reference engine off the hot path and
	// compared field for field (audit.go). Zero disables auditing.
	AuditEvery int

	// ScrubInterval > 0 runs the disk program cache's background
	// scrubber at that period (re-CRC + decode→re-encode fixpoint,
	// corrupt entries unlinked). Zero disables it; no effect without
	// ProgCacheDir.
	ScrubInterval time.Duration

	// Pool configures the supervised evalpool (retry/quarantine policy).
	Pool evalpool.Config

	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
}

// Ceilings are the server-side budget clamps.
type Ceilings struct {
	MaxInstructions uint64
	MaxArrayCells   int64
	MaxOutputBytes  int
	MaxTimeout      time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxConcurrent <= 0 {
		out.MaxConcurrent = 16
	}
	if out.MaxQueue <= 0 {
		out.MaxQueue = 64
	}
	if out.CacheEntries <= 0 {
		out.CacheEntries = 256
	}
	if out.MaxBodyBytes <= 0 {
		out.MaxBodyBytes = 4 << 20
	}
	if out.MaxSourceBytes <= 0 {
		out.MaxSourceBytes = 1 << 20
	}
	if out.Ceilings.MaxInstructions == 0 {
		out.Ceilings.MaxInstructions = 500e6
	}
	if out.Ceilings.MaxArrayCells == 0 {
		out.Ceilings.MaxArrayCells = 64 << 20
	}
	if out.Ceilings.MaxOutputBytes == 0 {
		out.Ceilings.MaxOutputBytes = 1 << 20
	}
	if out.Ceilings.MaxTimeout == 0 {
		out.Ceilings.MaxTimeout = 30 * time.Second
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = 10 * time.Second
	}
	if out.Logf == nil {
		out.Logf = log.Printf
	}
	return out
}

// Server is the nascentd HTTP service. Create with New, mount
// Handler(), and call Drain on shutdown.
type Server struct {
	cfg     Config
	pool    *evalpool.Pool
	cache   *Cache
	disk    *progcache.Cache // nil when ProgCacheDir is empty
	fleet   *fleet.Fleet     // nil unless FleetWorkers > 0
	limiter *limiter
	breaker *breaker
	mux     *http.ServeMux

	// baseCtx parents every admitted request's run context; baseCancel
	// fires at the drain deadline so in-flight engine runs stop at
	// their next poll point.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	draining atomic.Bool
	// drainMu serializes in-flight registration against the drain flip:
	// admit registers under RLock after re-checking the flag, Drain
	// flips the flag under Lock. That ordering makes inflight.Add
	// happen-before inflight.Wait — an admit that wins the lock is
	// counted before the wait starts, one that loses sees draining and
	// refuses.
	drainMu  sync.RWMutex
	inflight sync.WaitGroup
	started  time.Time

	// scrubStop halts the background disk-cache scrubber (nil when not
	// running).
	scrubStop func()

	// Self-audit state: auditTick paces the sampler, auditWG tracks
	// background audit goroutines (Drain waits for them after
	// cancelling baseCtx, so a drained server has no audit in flight).
	auditTick        atomic.Uint64
	auditWG          sync.WaitGroup
	nAuditSampled    atomic.Uint64
	nAuditClean      atomic.Uint64
	nAuditViolations atomic.Uint64
	nAuditErrors     atomic.Uint64

	// request counters (wire form in metricsDoc).
	nCompile atomic.Uint64
	nRun     atomic.Uint64
	nVerify  atomic.Uint64
	nReport  atomic.Uint64
	nDrill   atomic.Uint64
	nErr4xx  atomic.Uint64
	nErr5xx  atomic.Uint64
	nHealed  atomic.Uint64
	nPanics  atomic.Uint64
}

// New returns a configured Server.
func New(cfg Config) *Server {
	cfg = (&cfg).withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		pool:       evalpool.NewSupervised(cfg.Pool),
		cache:      newCache(cfg.CacheEntries),
		limiter:    newLimiter(cfg.MaxConcurrent, cfg.MaxQueue),
		breaker:    newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		baseCtx:    ctx,
		baseCancel: cancel,
		started:    time.Now(),
	}
	if cfg.ProgCacheDir != "" {
		disk, err := progcache.Open(cfg.ProgCacheDir)
		if err != nil {
			cfg.Logf("nascentd: program cache disabled: %v", err)
		} else {
			s.disk = disk
			s.pool.SetDiskCache(disk)
			if cfg.ScrubInterval > 0 {
				s.scrubStop = disk.StartScrubber(cfg.ScrubInterval, cfg.Logf)
			}
		}
	}
	if cfg.FleetWorkers > 0 {
		fl, err := fleet.New(fleet.Config{
			Workers: cfg.FleetWorkers,
			Command: cfg.FleetCommand,
			// The pool's per-attempt deadline applies to remote attempts
			// too: a hung worker process is killed and the job retried,
			// exactly like a hung in-process worker.
			JobTimeout: cfg.Pool.JobTimeout,
			HedgeAfter: cfg.FleetHedgeAfter,
			Logf:       cfg.Logf,
		})
		if err != nil {
			cfg.Logf("nascentd: fleet disabled: %v", err)
		} else {
			s.fleet = fl
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", s.guarded(s.handleCompile))
	mux.HandleFunc("POST /run", s.guarded(s.handleRun))
	mux.HandleFunc("POST /verify", s.guarded(s.handleVerify))
	mux.HandleFunc("GET /report", s.guarded(s.handleReport))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /drill", s.guarded(s.handleDrill))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.countError(http.StatusNotFound)
		writeError(w, &Error{Class: ClassUsage, Status: http.StatusNotFound, NaccExit: 2,
			Message: fmt.Sprintf("no such endpoint %s %s", r.Method, r.URL.Path)})
	})
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// guarded wraps a handler with the drain gate and panic containment:
// the compile/run pipeline already contains its panics (guard,
// supervision), so a panic escaping to here is a service-layer bug —
// it is still turned into a typed 500 instead of killing the
// connection, mirroring guard's contain-and-classify contract at the
// HTTP boundary.
func (s *Server) guarded(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.countError(http.StatusServiceUnavailable)
			writeError(w, &Error{
				Class:      ClassDraining,
				Message:    "server is draining",
				Status:     http.StatusServiceUnavailable,
				NaccExit:   -1,
				RetryAfter: 1,
			})
			return
		}
		defer func() {
			if rec := recover(); rec != nil {
				s.nPanics.Add(1)
				s.countError(http.StatusInternalServerError)
				writeError(w, &Error{
					Class:    ClassInternal,
					Message:  fmt.Sprintf("contained handler panic: %v", rec),
					Status:   http.StatusInternalServerError,
					NaccExit: -1,
				})
			}
		}()
		h(w, r)
	}
}

func (s *Server) countError(status int) {
	switch {
	case status >= 500:
		s.nErr5xx.Add(1)
	case status >= 400:
		s.nErr4xx.Add(1)
	}
}

// fail writes a typed error and counts it.
func (s *Server) fail(w http.ResponseWriter, e *Error) {
	if e.Status == 0 {
		e.Status = http.StatusInternalServerError
	}
	s.countError(e.Status)
	writeError(w, e)
}

// admit runs the admission controller and registers the request with
// the drain tracker. The returned release must be called when the
// request's work is done.
func (s *Server) admit(ctx context.Context) (func(), *Error) {
	release, apiErr := s.limiter.acquire(ctx)
	if apiErr != nil {
		return nil, apiErr
	}
	s.drainMu.RLock()
	if s.draining.Load() {
		// Drain began while this request waited for admission.
		s.drainMu.RUnlock()
		release()
		return nil, &Error{
			Class:      ClassDraining,
			Message:    "server is draining",
			Status:     http.StatusServiceUnavailable,
			NaccExit:   -1,
			RetryAfter: 1,
		}
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			release()
			s.inflight.Done()
		}
	}, nil
}

// runCtx derives the execution context of one admitted request: child
// of the HTTP request context (client disconnect cancels the run) and
// of the server's base context (drain deadline cancels it), bounded by
// the clamped per-request timeout.
func (s *Server) runCtx(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// clampBudget folds a request budget into the server ceilings.
func (s *Server) clampBudget(b Budget) (nascent.RunConfig, time.Duration, *Error) {
	ceil := s.cfg.Ceilings
	cfg := nascent.RunConfig{
		MaxInstructions: ceil.MaxInstructions,
		MaxArrayCells:   ceil.MaxArrayCells,
		MaxOutputBytes:  ceil.MaxOutputBytes,
	}
	if b.MaxInstructions > 0 {
		if b.MaxInstructions > ceil.MaxInstructions {
			return cfg, 0, usageError("max_instructions %d exceeds the server ceiling %d", b.MaxInstructions, ceil.MaxInstructions)
		}
		cfg.MaxInstructions = b.MaxInstructions
	}
	if b.MaxArrayCells > 0 {
		if b.MaxArrayCells > ceil.MaxArrayCells {
			return cfg, 0, usageError("max_array_cells %d exceeds the server ceiling %d", b.MaxArrayCells, ceil.MaxArrayCells)
		}
		cfg.MaxArrayCells = b.MaxArrayCells
	}
	if b.MaxOutputBytes > 0 {
		if b.MaxOutputBytes > ceil.MaxOutputBytes {
			return cfg, 0, usageError("max_output_bytes %d exceeds the server ceiling %d", b.MaxOutputBytes, ceil.MaxOutputBytes)
		}
		cfg.MaxOutputBytes = b.MaxOutputBytes
	}
	if b.TimeoutMS < 0 || b.MaxArrayCells < 0 || b.MaxOutputBytes < 0 {
		return cfg, 0, usageError("budget fields must be non-negative")
	}
	timeout := ceil.MaxTimeout
	if b.TimeoutMS > 0 {
		t := time.Duration(b.TimeoutMS) * time.Millisecond
		if t > ceil.MaxTimeout {
			return cfg, 0, usageError("timeout_ms %d exceeds the server ceiling %d", b.TimeoutMS, ceil.MaxTimeout.Milliseconds())
		}
		timeout = t
	}
	return cfg, timeout, nil
}

// compile resolves one compile request through the content-addressed
// cache: singleflight on a miss, LRU touch on a hit. Bytecode engines
// precompile their vm.Program at fill time.
//
// With a disk cache configured, a fill for a bytecode engine first
// consults it: a warm entry decodes straight to a runnable vm.Program
// plus its compile metadata, and the frontend never runs. Any disk
// failure — miss, corruption, version skew — falls through to a fresh
// compile whose result is written back, healing the entry.
func (s *Server) compile(source, filename string, opts nascent.Options, engine nascent.Engine) (*compiled, cacheKey, bool, error) {
	if filename == "" {
		filename = "input.mf"
	}
	key := contentKey(source, filename, opts, engine)
	bytecode := engine != nascent.EngineTree
	c, hit, err := s.cache.get(key, func() (*compiled, error) {
		if s.disk != nil && bytecode {
			if ent, err := s.disk.Get(key); err == nil {
				out := &compiled{
					vmProg:       ent.Prog,
					engine:       engine,
					staticChecks: ent.StaticChecks,
					opt:          ent.Opt,
				}
				// Tier state is process state — warm bytecode from disk
				// still starts at the cold tier.
				s.wrapTier(out)
				return out, nil
			}
		}
		opts.Filename = filename
		prog, err := nascent.Compile(source, opts)
		if err != nil {
			return nil, err
		}
		out := &compiled{prog: prog, engine: engine, staticChecks: prog.StaticChecks(), opt: prog.Opt}
		switch engine {
		case nascent.EngineVM, nascent.EngineTiered:
			out.vmProg, err = vm.Compile(prog.IR)
		case nascent.EngineVMOpt:
			out.vmProg, err = vm.CompileOptimized(prog.IR)
		case nascent.EngineVMRCE, nascent.EngineVMJit:
			// Guard/deopt range-check elimination plus the optimizer;
			// vmjit closure-compiles the same stream.
			out.vmProg, err = vm.CompileRCE(prog.IR)
		}
		if err != nil {
			return nil, err
		}
		s.wrapTier(out)
		if s.disk != nil && bytecode {
			// Best-effort persist; a write failure only costs the next
			// cold start its warm path.
			s.disk.Put(key, &progcache.Entry{Prog: out.vmProg, StaticChecks: out.staticChecks, Opt: out.opt})
		}
		return out, nil
	})
	return c, key, hit, err
}

// wrapTier attaches the tier handle for engines that execute through
// one: vmjit entries warm a JitHandle (first run profiles on the
// optimized switch VM, closure compilation happens in the background),
// tiered entries get a hotness controller seeded at the cold tier. The
// handle lives exactly as long as the cache entry, so an eviction also
// resets the entry's hotness — by design, since promotion state must
// never outlive the artifact it describes.
func (s *Server) wrapTier(c *compiled) {
	if c.vmProg == nil {
		return
	}
	switch c.engine {
	case nascent.EngineVMJit:
		c.jit = tier.NewJitHandle(c.vmProg)
	case nascent.EngineTiered:
		c.trd = tier.FromBytecode(c.vmProg, s.cfg.TierThresholds)
	}
}

// Drain performs graceful shutdown: flip the drain gate (new requests
// get typed 503s), wait for in-flight work to finish, and cancel
// whatever is still running at the deadline — engine runs stop at
// their next poll point and surface typed cancellation errors. It
// returns once all in-flight work has completed, and flushes a final
// metrics line through Config.Logf.
func (s *Server) Drain(ctx context.Context) {
	s.drainMu.Lock()
	already := s.draining.Swap(true)
	s.drainMu.Unlock()
	if already {
		return // already draining
	}
	deadline := time.AfterFunc(s.cfg.DrainTimeout, s.baseCancel)
	defer deadline.Stop()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Caller gave up before DrainTimeout: cancel now and still wait
		// for handlers to unwind (poll points make this prompt).
		s.baseCancel()
		<-done
	}
	s.baseCancel()
	// Background audits observe the cancelled baseCtx at their next
	// poll point; waiting here means a drained server reports final
	// audit counters (an abandoned audit is uncounted, never a
	// violation).
	s.auditWG.Wait()
	if s.scrubStop != nil {
		s.scrubStop()
	}
	if s.fleet != nil {
		s.fleet.Close()
	}
	s.cfg.Logf("nascentd: drained; %s", s.pool.Metrics().String())
}

// ErrNoFleet reports a fleet operation on a server running without a
// worker fleet.
var ErrNoFleet = errors.New("service: no fleet configured")

// RollFleet performs a zero-downtime rolling restart of the worker
// fleet: each member is drained, stopped, respawned, and re-handshaken
// in turn while the rest keep serving (fleet.Roll). nascentd wires it
// to SIGHUP; a second roll while one is in flight returns
// fleet.ErrRollInProgress.
func (s *Server) RollFleet(ctx context.Context) error {
	if s.fleet == nil {
		return ErrNoFleet
	}
	return s.fleet.Roll(ctx)
}

// diskStats snapshots the disk cache counters (nil when disabled).
func (s *Server) diskStats() *progcache.Metrics {
	if s.disk == nil {
		return nil
	}
	m := s.disk.Metrics()
	return &m
}

// uptime reports how long the server has been up.
func (s *Server) uptime() time.Duration { return time.Since(s.started) }

// chaosDoc is the chaos section of GET /metrics.
type chaosDoc struct {
	Active bool   `json:"active"`
	Spec   string `json:"spec,omitempty"`
	Fired  uint64 `json:"fired"`
}

func currentChaos() chaosDoc {
	spec, ok := chaos.CurrentSpec()
	doc := chaosDoc{Active: ok, Fired: chaos.Fired()}
	if ok {
		doc.Spec = spec.String()
	}
	return doc
}
