package service

import (
	"sync"
	"time"

	"nascent"
)

// breaker is a circuit breaker over (scheme, engine) pairs. The
// supervised pool already heals transient faults by retrying; what it
// cannot do is stop a systematically sick configuration (say, a vmopt
// miscompile or an optimizer bug tripped by one scheme) from burning
// every tenant's retry budget. After `threshold` consecutive
// quarantine-level failures on one pair, the breaker trips: requests
// for that pair are served degraded (naive scheme on the tree engine —
// the reference configuration that every other layer validates
// against) until a cooldown passes, then a single probe request is let
// through on the real pair; success closes the circuit, failure
// re-trips it.
//
// Degradation preserves program semantics — output and traps are
// engine- and scheme-independent — but not the check counters (naive
// keeps every check), so responses carry an explicit Degraded marker.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests
	states    map[pairKey]*pairState

	trips  uint64
	probes uint64
	served uint64 // requests served degraded
}

type pairKey struct {
	scheme nascent.Scheme
	engine nascent.Engine
}

type pairState struct {
	consecutive int       // consecutive abnormal failures while closed
	open        bool      // circuit open: serve degraded
	openedAt    time.Time // when the circuit opened (cooldown base)
	probing     bool      // one probe is in flight
}

// breakerStats is the wire form of the breaker counters.
type breakerStats struct {
	Threshold  int            `json:"threshold"`
	CooldownMS int64          `json:"cooldown_ms"`
	Open       []breakerState `json:"open,omitempty"`
	Trips      uint64         `json:"trips"`
	Probes     uint64         `json:"probes"`
	Degraded   uint64         `json:"degraded"`
}

type breakerState struct {
	Scheme string `json:"scheme"`
	Engine string `json:"engine"`
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		states:    map[pairKey]*pairState{},
	}
}

// allow decides how to serve a request for (scheme, engine): verbatim
// (closed circuit, or an open one whose cooldown elapsed — then this
// request is the recovery probe), or degraded to (naive, tree).
func (b *breaker) allow(scheme nascent.Scheme, engine nascent.Engine) (degraded bool, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[pairKey{scheme, engine}]
	if st == nil || !st.open {
		return false, false
	}
	if !st.probing && b.now().Sub(st.openedAt) >= b.cooldown {
		st.probing = true
		b.probes++
		return false, true
	}
	b.served++
	return true, false
}

// trip forces the pair's circuit open immediately, bypassing the
// consecutive-failure threshold. The self-auditor uses it: one proven
// wrong answer outranks any number of healthy-looking responses, so
// the pair degrades to the reference configuration at once and earns
// its way back through the normal cooldown-and-probe cycle.
func (b *breaker) trip(scheme nascent.Scheme, engine nascent.Engine) {
	b.mu.Lock()
	defer b.mu.Unlock()
	key := pairKey{scheme, engine}
	st := b.states[key]
	if st == nil {
		st = &pairState{}
		b.states[key] = st
	}
	st.open = true
	st.probing = false
	st.openedAt = b.now()
	b.trips++
}

// isOpen reports whether the pair's circuit is currently open, without
// moving any counter or starting a probe. resolve uses it to pick a
// degradation target that is itself healthy.
func (b *breaker) isOpen(scheme nascent.Scheme, engine nascent.Engine) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[pairKey{scheme, engine}]
	return st != nil && st.open
}

// report feeds one outcome back. abnormal means a quarantine-level
// failure (PoisonedInputError — every supervised attempt died);
// deterministic failures (compile errors, traps, budgets) are the
// input's fault and never move the breaker.
func (b *breaker) report(scheme nascent.Scheme, engine nascent.Engine, probe, abnormal bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	key := pairKey{scheme, engine}
	st := b.states[key]
	if st == nil {
		st = &pairState{}
		b.states[key] = st
	}
	switch {
	case probe && abnormal:
		// Failed probe: re-open, restart the cooldown.
		st.open = true
		st.probing = false
		st.openedAt = b.now()
		b.trips++
	case probe:
		// Successful probe: close the circuit.
		*st = pairState{}
	case abnormal:
		st.consecutive++
		if !st.open && st.consecutive >= b.threshold {
			st.open = true
			st.openedAt = b.now()
			b.trips++
		}
	default:
		if !st.open {
			st.consecutive = 0
		}
	}
}

func (b *breaker) stats() breakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := breakerStats{
		Threshold:  b.threshold,
		CooldownMS: b.cooldown.Milliseconds(),
		Trips:      b.trips,
		Probes:     b.probes,
		Degraded:   b.served,
	}
	for k, st := range b.states {
		if st.open {
			s.Open = append(s.Open, breakerState{Scheme: k.scheme.String(), Engine: k.engine.String()})
		}
	}
	return s
}
