package service

import (
	"net/http"
	"testing"

	"nascent"
	"nascent/internal/chaos"
)

// runVMOpt posts one /run for progOK on (ALL, vmopt) and returns the
// response.
func runVMOpt(t *testing.T, s *Server) *RunResponse {
	t.Helper()
	req := RunRequest{CompileRequest: CompileRequest{
		Source:  progOK,
		Options: Options{Scheme: "all"},
		Engine:  "vmopt",
	}}
	var resp RunResponse
	w := do(t, s, "POST", "/run", req, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("run status = %d, body %s", w.Code, w.Body.String())
	}
	return &resp
}

// TestSelfAuditCleanPass: with AuditEvery=1 every non-tree run is
// re-executed on the reference engine; identical observables count as
// clean, and a trapped run audits clean too (a trap is an observable,
// not a failure).
func TestSelfAuditCleanPass(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.AuditEvery = 1 })
	runVMOpt(t, s)

	trap := RunRequest{CompileRequest: CompileRequest{
		Source:  progTrap,
		Options: Options{Scheme: "all"},
		Engine:  "vm",
	}}
	var trapResp RunResponse
	if w := do(t, s, "POST", "/run", trap, &trapResp); w.Code != http.StatusOK {
		t.Fatalf("trap run status = %d, body %s", w.Code, w.Body.String())
	}
	if !trapResp.Trapped {
		t.Fatal("checked out-of-range run did not trap")
	}

	// Tree-engine runs are never sampled: the reference auditing
	// itself proves nothing.
	tree := RunRequest{CompileRequest: CompileRequest{Source: progOK, Engine: "tree"}}
	if w := do(t, s, "POST", "/run", tree, nil); w.Code != http.StatusOK {
		t.Fatalf("tree run status = %d", w.Code)
	}

	s.settleAudits()
	a := s.auditSnapshot()
	if a.Sampled != 2 || a.Clean != 2 || a.Violations != 0 || a.Errors != 0 {
		t.Fatalf("audit counters = %+v, want 2 sampled, 2 clean", a)
	}
}

// TestSelfAuditSampling: AuditEvery=2 samples every other eligible run.
func TestSelfAuditSampling(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.AuditEvery = 2 })
	for i := 0; i < 4; i++ {
		runVMOpt(t, s)
	}
	s.settleAudits()
	if a := s.auditSnapshot(); a.Sampled != 2 {
		t.Fatalf("audit sampled = %d of 4 runs at every=2, want 2 (%+v)", a.Sampled, a)
	}
}

// TestSelfAuditDisabledByDefault: Config{} never audits.
func TestSelfAuditDisabledByDefault(t *testing.T) {
	s := newTestServer(t, nil)
	runVMOpt(t, s)
	s.settleAudits()
	if a := s.auditSnapshot(); a.Every != 0 || a.Sampled != 0 {
		t.Fatalf("audit ran while disabled: %+v", a)
	}
}

// TestSelfAuditChaosViolation arms service.audit.mismatch: the audit
// observes a divergent reference output for a response that was in
// fact correct, records a SelfAuditViolation, and trips the served
// pair's breaker so the next request degrades to the reference
// configuration.
func TestSelfAuditChaosViolation(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.AuditEvery = 1 })
	chaos.Enable(chaos.Spec{Seed: 1, Rate: 1, Site: chaos.SiteAuditMismatch})
	defer chaos.Disable()

	runVMOpt(t, s)
	s.settleAudits()
	chaos.Disable()

	a := s.auditSnapshot()
	if a.Violations != 1 || a.Clean != 0 || a.Errors != 0 {
		t.Fatalf("audit counters = %+v, want exactly 1 violation", a)
	}
	if !s.breaker.isOpen(nascent.ALL, nascent.EngineVMOpt) {
		t.Fatal("violation did not trip the (ALL, vmopt) breaker")
	}

	// The pair now serves degraded on the reference configuration.
	resp := runVMOpt(t, s)
	if resp.Compile.Degraded == nil {
		t.Fatal("post-violation run was not degraded")
	}
	if resp.Compile.Engine != "tree" {
		t.Fatalf("post-violation run served on %q, want tree", resp.Compile.Engine)
	}

	// A degraded (tree) run is not audited, so the counters are stable.
	s.settleAudits()
	if a := s.auditSnapshot(); a.Sampled != 1 {
		t.Fatalf("degraded run was sampled: %+v", a)
	}
}

// TestSelfAuditViolationError pins the typed error's rendering.
func TestSelfAuditViolationError(t *testing.T) {
	var err error = &SelfAuditViolation{CacheKey: "abc", Scheme: "ALL", Engine: "vmopt", Diff: "checks: served 1, reference 2"}
	want := "service: self-audit violation on ALL/vmopt (key abc): checks: served 1, reference 2"
	if err.Error() != want {
		t.Fatalf("violation error = %q, want %q", err.Error(), want)
	}
}
