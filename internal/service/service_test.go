package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nascent"
)

// Test programs.

// progOK is a small clean program with eliminable checks.
const progOK = `program p
  real a(10)
  integer i
  do i = 1, 10
    a(i) = float(i)
  enddo
  print a(10)
end
`

// progTrap indexes out of range under checks.
const progTrap = `program p
  real a(5)
  integer i
  i = 9
  a(i) = 1.0
  print a(1)
end
`

// progBad does not parse.
const progBad = "program p\n  do done doom\nend\n"

// newTestServer returns a Server with fast test-sized limits. Callers
// needing different knobs pass a mutator.
func newTestServer(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Logf: t.Logf,
	}
	cfg.Pool.JobTimeout = 5 * time.Second
	if mut != nil {
		mut(&cfg)
	}
	return New(cfg)
}

// do sends one request through the handler and decodes the JSON body.
func do(t *testing.T, s *Server, method, path string, body any, into any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		raw, err := json.Marshal(b)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if into != nil {
		if err := json.Unmarshal(w.Body.Bytes(), into); err != nil {
			t.Fatalf("%s %s: decode body %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w
}

// wantError asserts a typed error body with the given status and class.
func wantError(t *testing.T, w *httptest.ResponseRecorder, status int, class string) *Error {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status = %d, want %d (body %s)", w.Code, status, w.Body.String())
	}
	var body errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body.Error == nil {
		t.Fatalf("error body %q not typed: %v", w.Body.String(), err)
	}
	if body.Error.Class != class {
		t.Fatalf("error class = %q, want %q (body %s)", body.Error.Class, class, w.Body.String())
	}
	if body.Error.Status != status {
		t.Fatalf("error.status = %d, want %d", body.Error.Status, status)
	}
	return body.Error
}

func TestCompileEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	req := CompileRequest{Source: progOK, Options: Options{Scheme: "all"}}

	var resp CompileResponse
	w := do(t, s, "POST", "/compile", req, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if resp.CacheHit {
		t.Error("first compile reported a cache hit")
	}
	if resp.Scheme != "ALL" {
		t.Errorf("scheme = %q, want ALL", resp.Scheme)
	}
	if resp.Opt == nil || resp.Opt.ChecksBefore == 0 {
		t.Errorf("optimizer report missing or empty: %+v", resp.Opt)
	}
	if len(resp.CacheKey) != 64 {
		t.Errorf("cache key %q is not hex sha256", resp.CacheKey)
	}

	// Same request again: served from the cache, same content address.
	var resp2 CompileResponse
	do(t, s, "POST", "/compile", req, &resp2)
	if !resp2.CacheHit {
		t.Error("second compile missed the cache")
	}
	if resp2.CacheKey != resp.CacheKey {
		t.Errorf("cache key changed across identical requests: %q vs %q", resp.CacheKey, resp2.CacheKey)
	}

	// A different engine is a different artifact (bytecode is
	// precompiled per engine), so a different key.
	var resp3 CompileResponse
	do(t, s, "POST", "/compile", CompileRequest{Source: progOK, Options: Options{Scheme: "all"}, Engine: "vm"}, &resp3)
	if resp3.CacheKey == resp.CacheKey {
		t.Error("vm engine shares the tree engine's cache key")
	}
}

// TestRunMatchesDirectExecution is the service's core fidelity claim:
// for every engine, POST /run returns byte-identical output and
// identical counters to running the same program directly through the
// library (which is exactly what nacc does).
func TestRunMatchesDirectExecution(t *testing.T) {
	s := newTestServer(t, nil)
	for _, engine := range []string{"tree", "vm", "vmopt"} {
		for _, scheme := range []string{"naive", "all"} {
			t.Run(engine+"/"+scheme, func(t *testing.T) {
				opts := nascent.Options{BoundsChecks: true, Filename: "input.mf"}
				if scheme == "all" {
					opts.Scheme = nascent.ALL
				}
				prog, err := nascent.Compile(progOK, opts)
				if err != nil {
					t.Fatalf("direct compile: %v", err)
				}
				eng, err := nascent.ParseEngine(engine)
				if err != nil {
					t.Fatalf("parse engine: %v", err)
				}
				want, err := prog.RunWith(nascent.RunConfig{Engine: eng})
				if err != nil {
					t.Fatalf("direct run: %v", err)
				}

				var resp RunResponse
				w := do(t, s, "POST", "/run", RunRequest{
					CompileRequest: CompileRequest{Source: progOK, Options: Options{Scheme: scheme}, Engine: engine},
				}, &resp)
				if w.Code != http.StatusOK {
					t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
				}
				if resp.Output != want.Output {
					t.Errorf("output diverges from direct run:\nservice: %q\ndirect:  %q", resp.Output, want.Output)
				}
				if resp.Instructions != want.Instructions || resp.Checks != want.Checks {
					t.Errorf("counters diverge: service (%d, %d), direct (%d, %d)",
						resp.Instructions, resp.Checks, want.Instructions, want.Checks)
				}
				if resp.NaccExit != 0 || resp.Trapped {
					t.Errorf("clean run reported exit %d trapped %v", resp.NaccExit, resp.Trapped)
				}
				if resp.Attempts != 1 {
					t.Errorf("attempts = %d, want 1", resp.Attempts)
				}
			})
		}
	}
}

// TestRunTrapped: a failed range check is a program outcome, not a
// service error — HTTP 200 with Trapped and nacc exit 1.
func TestRunTrapped(t *testing.T) {
	s := newTestServer(t, nil)
	var resp RunResponse
	w := do(t, s, "POST", "/run", RunRequest{
		CompileRequest: CompileRequest{Source: progTrap},
	}, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %s)", w.Code, w.Body.String())
	}
	if !resp.Trapped || resp.NaccExit != 1 {
		t.Errorf("trapped = %v, nacc_exit = %d; want true, 1", resp.Trapped, resp.NaccExit)
	}
	if resp.TrapNote == "" {
		t.Error("trap note is empty")
	}
}

func TestRunCompileError(t *testing.T) {
	s := newTestServer(t, nil)
	w := do(t, s, "POST", "/run", RunRequest{CompileRequest: CompileRequest{Source: progBad}}, nil)
	e := wantError(t, w, http.StatusUnprocessableEntity, ClassCompile)
	if e.NaccExit != 3 {
		t.Errorf("nacc_exit = %d, want 3", e.NaccExit)
	}
}

func TestRunResourceExhausted(t *testing.T) {
	s := newTestServer(t, nil)
	w := do(t, s, "POST", "/run", RunRequest{
		CompileRequest: CompileRequest{Source: progOK},
		Budget:         Budget{MaxInstructions: 10},
	}, nil)
	e := wantError(t, w, http.StatusRequestTimeout, ClassResource)
	if e.NaccExit != 4 {
		t.Errorf("nacc_exit = %d, want 4", e.NaccExit)
	}
	if e.Resource == "" {
		t.Error("resource field empty")
	}
}

func TestUsageErrors(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxSourceBytes = 1 << 10 })
	cases := []struct {
		name   string
		body   any
		status int
		class  string
		exit   int
	}{
		{"malformed json", `{"source": `, http.StatusBadRequest, ClassUsage, 2},
		{"unknown field", `{"source": "program p\nend\n", "bogus": 1}`, http.StatusBadRequest, ClassUsage, 2},
		{"trailing garbage", `{"source": "program p\nend\n"} extra`, http.StatusBadRequest, ClassUsage, 2},
		{"bad field type", `{"source": 42}`, http.StatusBadRequest, ClassUsage, 2},
		{"empty source", RunRequest{}, http.StatusBadRequest, ClassUsage, 2},
		{"bad scheme", RunRequest{CompileRequest: CompileRequest{Source: progOK, Options: Options{Scheme: "turbo"}}},
			http.StatusBadRequest, ClassUsage, 2},
		{"bad kind", RunRequest{CompileRequest: CompileRequest{Source: progOK, Options: Options{Kind: "xyz"}}},
			http.StatusBadRequest, ClassUsage, 2},
		{"bad engine", RunRequest{CompileRequest: CompileRequest{Source: progOK, Engine: "jit"}},
			http.StatusBadRequest, ClassUsage, 2},
		{"budget over ceiling", RunRequest{CompileRequest: CompileRequest{Source: progOK},
			Budget: Budget{MaxInstructions: 1 << 62}}, http.StatusBadRequest, ClassUsage, 2},
		{"timeout over ceiling", RunRequest{CompileRequest: CompileRequest{Source: progOK},
			Budget: Budget{TimeoutMS: int64(time.Hour / time.Millisecond)}}, http.StatusBadRequest, ClassUsage, 2},
		{"oversized source", RunRequest{CompileRequest: CompileRequest{Source: "program p\n" + strings.Repeat("! pad\n", 400) + "end\n"}},
			http.StatusRequestEntityTooLarge, ClassTooLarge, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := do(t, s, "POST", "/run", c.body, nil)
			e := wantError(t, w, c.status, c.class)
			if e.NaccExit != c.exit {
				t.Errorf("nacc_exit = %d, want %d", e.NaccExit, c.exit)
			}
		})
	}
}

func TestBodyTooLarge(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 256 })
	big := fmt.Sprintf(`{"source": %q}`, strings.Repeat("x", 1024))
	w := do(t, s, "POST", "/run", big, nil)
	wantError(t, w, http.StatusRequestEntityTooLarge, ClassTooLarge)
}

func TestVerifyEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	var resp VerifyResponse
	w := do(t, s, "POST", "/verify", VerifyRequest{Source: progOK, Engine: "vm"}, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if !resp.OK || resp.NaccExit != 0 {
		t.Errorf("verify failed: %+v", resp)
	}
	if resp.Summary == "" {
		t.Error("summary empty")
	}
}

func TestReportEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("report measures the whole suite")
	}
	s := newTestServer(t, nil)
	var doc struct {
		Table           int              `json:"table"`
		Programs        []string         `json:"programs"`
		Characteristics []map[string]any `json:"characteristics"`
		Text            string           `json:"text"`
	}
	w := do(t, s, "GET", "/report?table=1", nil, &doc)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if doc.Table != 1 || len(doc.Programs) == 0 || len(doc.Characteristics) != len(doc.Programs) {
		t.Errorf("doc shape wrong: table %d, %d programs, %d rows", doc.Table, len(doc.Programs), len(doc.Characteristics))
	}
	if !strings.Contains(doc.Text, "Table 1") {
		t.Errorf("canonical text rendering missing: %q", doc.Text[:min(80, len(doc.Text))])
	}

	w = do(t, s, "GET", "/report?table=9", nil, nil)
	wantError(t, w, http.StatusBadRequest, ClassUsage)
}

func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, nil)
	do(t, s, "POST", "/run", RunRequest{CompileRequest: CompileRequest{Source: progOK}}, nil)

	var health struct {
		Status string `json:"status"`
	}
	w := do(t, s, "GET", "/healthz", nil, &health)
	if w.Code != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz = %d %q", w.Code, health.Status)
	}

	var m metricsDoc
	w = do(t, s, "GET", "/metrics", nil, &m)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", w.Code)
	}
	if m.Requests.Run != 1 {
		t.Errorf("run counter = %d, want 1", m.Requests.Run)
	}
	if m.Pool.Jobs != 1 {
		t.Errorf("pool jobs = %d, want 1", m.Pool.Jobs)
	}
	if m.Cache.Misses != 1 {
		t.Errorf("cache misses = %d, want 1", m.Cache.Misses)
	}
	if m.Admission.Admitted != 1 {
		t.Errorf("admitted = %d, want 1", m.Admission.Admitted)
	}
}

func TestUnknownEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	w := do(t, s, "GET", "/nope", nil, nil)
	wantError(t, w, http.StatusNotFound, ClassUsage)
	// Wrong method on a known path also falls through to the typed 404.
	w = do(t, s, "GET", "/compile", nil, nil)
	wantError(t, w, http.StatusNotFound, ClassUsage)
}

// TestDegradedRun: trip the breaker by hand, then observe a request for
// the sick pair served degraded with an explicit marker.
func TestDegradedRun(t *testing.T) {
	s := newTestServer(t, nil)
	for i := 0; i < 3; i++ {
		s.breaker.report(nascent.ALL, nascent.EngineVMOpt, false, true)
	}
	var resp RunResponse
	w := do(t, s, "POST", "/run", RunRequest{
		CompileRequest: CompileRequest{Source: progOK, Options: Options{Scheme: "all"}, Engine: "vmopt"},
	}, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if resp.Compile.Degraded == nil {
		t.Fatal("degraded marker missing on a tripped pair")
	}
	if resp.Compile.Scheme != "naive" || resp.Compile.Engine != "tree" {
		t.Errorf("served (%s, %s), want degraded (naive, tree)", resp.Compile.Scheme, resp.Compile.Engine)
	}
	// Semantics preserved: output matches the requested configuration's.
	prog, err := nascent.Compile(progOK, nascent.Options{BoundsChecks: true, Filename: "input.mf"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Output != want.Output {
		t.Errorf("degraded output diverges: %q vs %q", resp.Output, want.Output)
	}
}
