package service

import (
	"context"
	"net/http"
	"sync/atomic"
)

// limiter is the admission controller: at most maxConcurrent requests
// execute at once, at most maxQueue more wait for a slot, and everything
// beyond that is shed immediately with a typed 429 — bounded latency
// for admitted requests instead of unbounded degradation for everyone.
//
// The limiter sits OVER the supervised evalpool: admitted work is
// submitted via Pool.SubmitCtx, so the pool contributes supervision
// (retry, quarantine, timeout) while the limiter owns concurrency.
type limiter struct {
	sem    chan struct{} // buffered to maxConcurrent; a token = a slot
	queued atomic.Int64
	maxQ   int64

	admitted atomic.Uint64
	shed     atomic.Uint64
}

// limiterStats is the wire form of the admission counters.
type limiterStats struct {
	MaxConcurrent int    `json:"max_concurrent"`
	MaxQueue      int    `json:"max_queue"`
	InFlight      int    `json:"in_flight"`
	Queued        int64  `json:"queued"`
	Admitted      uint64 `json:"admitted"`
	Shed          uint64 `json:"shed"`
}

func newLimiter(maxConcurrent, maxQueue int) *limiter {
	if maxConcurrent <= 0 {
		maxConcurrent = 16
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &limiter{
		sem:  make(chan struct{}, maxConcurrent),
		maxQ: int64(maxQueue),
	}
}

// shedError is the typed 429 the limiter sheds with.
func shedError(retryAfter int) *Error {
	return &Error{
		Class:      ClassShed,
		Message:    "server saturated: admission queue full, retry later",
		Status:     http.StatusTooManyRequests,
		NaccExit:   -1,
		RetryAfter: retryAfter,
	}
}

// acquire admits one request, blocking in the bounded queue if every
// slot is busy. It returns a release func on admission, or a typed
// error: ClassShed when the queue is full, ClassResource when ctx was
// cancelled while queued.
func (l *limiter) acquire(ctx context.Context) (func(), *Error) {
	// Fast path: free slot, no queueing.
	select {
	case l.sem <- struct{}{}:
		l.admitted.Add(1)
		return l.releaseFunc(), nil
	default:
	}
	// Saturated: join the bounded wait queue or shed. The counter is
	// optimistic — under a race a few extra requests may briefly queue —
	// but the bound holds within workers±1, which is what shedding needs.
	if l.queued.Add(1) > l.maxQ {
		l.queued.Add(-1)
		l.shed.Add(1)
		return nil, shedError(1)
	}
	defer l.queued.Add(-1)
	select {
	case l.sem <- struct{}{}:
		l.admitted.Add(1)
		return l.releaseFunc(), nil
	case <-ctx.Done():
		return nil, &Error{
			Class:    ClassResource,
			Message:  "request cancelled while queued for admission",
			Status:   http.StatusRequestTimeout,
			NaccExit: 4,
			Resource: "context",
		}
	}
}

func (l *limiter) releaseFunc() func() {
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			<-l.sem
		}
	}
}

func (l *limiter) stats() limiterStats {
	return limiterStats{
		MaxConcurrent: cap(l.sem),
		MaxQueue:      int(l.maxQ),
		InFlight:      len(l.sem),
		Queued:        l.queued.Load(),
		Admitted:      l.admitted.Load(),
		Shed:          l.shed.Load(),
	}
}
