package service

import (
	"errors"
	"fmt"
	"net/http"

	"nascent/internal/chaos"
)

// handleDrill serves POST /drill: execute one run request with a
// deterministic fault-injection spec armed for the scope of the
// request. Gated behind Config.AllowDrill — arming injection in a
// shared process is an operator decision, not a tenant right.
//
// The drill's run bypasses the compiled-program cache and the pool's
// frontend memo (unique per-drill filename) so injection can reach
// every pipeline stage: lexer, parser, sem, lowering, optimizer, both
// engines' poll points, and the pool's worker sites. The supervised
// pool must then either heal the faults through retries (DrillResponse
// Healed) or quarantine the job behind a typed PoisonedInputError
// whose error body carries the exact replayable spec.
//
// Scoping is temporal: while one drill is armed, concurrent organic
// requests share the process-global registry and may observe injected
// faults too — they heal through the same supervision machinery, which
// is precisely the property an in-service drill exists to rehearse.
// Drills never queue behind each other: a second concurrent drill gets
// a typed 409.
func (s *Server) handleDrill(w http.ResponseWriter, r *http.Request) {
	s.nDrill.Add(1)
	if !s.cfg.AllowDrill {
		s.fail(w, &Error{Class: ClassDrill, Message: "drills are disabled (start nascentd with -allow-drill)",
			Status: http.StatusForbidden, NaccExit: -1})
		return
	}
	var req DrillRequest
	if apiErr := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	spec, err := chaos.ParseSpec(req.Spec)
	if err != nil {
		s.fail(w, &Error{Class: ClassDrill, Message: err.Error(), Status: http.StatusBadRequest, NaccExit: 2})
		return
	}
	res, apiErr := s.resolve(&req.Run)
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	release, apiErr := s.admit(r.Context())
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	defer release()

	disarm, err := chaos.AcquireDrill(spec)
	if err != nil {
		status := http.StatusConflict
		if !errors.Is(err, chaos.ErrDrillBusy) {
			status = http.StatusServiceUnavailable
		}
		s.fail(w, &Error{Class: ClassDrill, Message: err.Error(), Status: status, NaccExit: -1})
		return
	}
	defer disarm()

	name := req.Name
	if name == "" {
		name = "drill"
	}
	// Unique filename per drill invocation busts the pool's frontend
	// memo, so compile-stage sites (keyed by source content, which IS
	// deterministic) get a chance to fire on every drill.
	res.filename = fmt.Sprintf("%s-%d.mf", name, s.nDrill.Load())

	resp := DrillResponse{Spec: spec.String()}
	runResp, runErr := s.executeDrill(r, res, name)
	resp.Fired = chaos.Fired()
	if runErr != nil {
		resp.Error = runErr
		resp.Attempts = runErr.Attempts
	} else {
		resp.Result = runResp
		resp.Attempts = runResp.Attempts
		resp.Healed = runResp.Attempts > 1
	}
	writeJSON(w, http.StatusOK, resp)
}

// executeDrill runs the drill's request with a drill-scoped job name
// (worker-site injection keys on it, so (spec, name) deterministically
// selects the fate) and the cache bypassed.
func (s *Server) executeDrill(r *http.Request, res *resolved, name string) (*RunResponse, *Error) {
	return s.execute(r, res, true /* noCache */, name)
}
