package service

import (
	"errors"
	"net/http"
	"testing"

	"nascent"
	"nascent/internal/chaos"
	"nascent/internal/evalpool"
)

// findDrillSeed searches for a deterministic seed whose fate function
// satisfies pred over the drill job's attempt keys.
func findDrillSeed(t *testing.T, rate float64, site chaos.Site, pred func(chaos.Spec) bool) chaos.Spec {
	t.Helper()
	for seed := uint64(1); seed < 5000; seed++ {
		spec := chaos.Spec{Seed: seed, Rate: rate, Site: site}
		if pred(spec) {
			return spec
		}
	}
	t.Fatal("no seed found")
	return chaos.Spec{}
}

func TestDrillDisabled(t *testing.T) {
	s := newTestServer(t, nil) // AllowDrill off
	w := do(t, s, "POST", "/drill", DrillRequest{Spec: "1:1", Run: RunRequest{CompileRequest: CompileRequest{Source: progOK}}}, nil)
	wantError(t, w, http.StatusForbidden, ClassDrill)
}

func TestDrillBadSpec(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.AllowDrill = true })
	w := do(t, s, "POST", "/drill", DrillRequest{Spec: "not-a-spec", Run: RunRequest{CompileRequest: CompileRequest{Source: progOK}}}, nil)
	wantError(t, w, http.StatusBadRequest, ClassDrill)
}

func TestDrillBusy(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.AllowDrill = true })
	release, err := chaos.AcquireDrill(chaos.Spec{Seed: 1, Rate: 1, Site: chaos.SiteWorkerSlow})
	if err != nil {
		t.Fatalf("AcquireDrill: %v", err)
	}
	defer release()
	w := do(t, s, "POST", "/drill", DrillRequest{Spec: "1:1:pool.worker.slow", Run: RunRequest{CompileRequest: CompileRequest{Source: progOK}}}, nil)
	wantError(t, w, http.StatusConflict, ClassDrill)
}

// TestDrillHeals: a fault that fires on the first attempt but not the
// second is healed by supervised retry — the drill reports Healed with
// the run's real result.
func TestDrillHeals(t *testing.T) {
	if chaos.Active() {
		t.Fatal("chaos already enabled")
	}
	s := newTestServer(t, func(c *Config) { c.AllowDrill = true })
	spec := findDrillSeed(t, 0.5, chaos.SiteWorkerKill, func(sp chaos.Spec) bool {
		return chaos.Decide(sp, chaos.SiteWorkerKill, chaos.AttemptKey("drill", 0)) &&
			!chaos.Decide(sp, chaos.SiteWorkerKill, chaos.AttemptKey("drill", 1))
	})

	var resp DrillResponse
	w := do(t, s, "POST", "/drill", DrillRequest{
		Spec: spec.String(),
		Run:  RunRequest{CompileRequest: CompileRequest{Source: progOK}},
	}, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if resp.Error != nil {
		t.Fatalf("drill failed instead of healing: %+v", resp.Error)
	}
	if !resp.Healed || resp.Attempts != 2 {
		t.Errorf("healed=%v attempts=%d, want healed in 2 attempts", resp.Healed, resp.Attempts)
	}
	if resp.Fired == 0 {
		t.Error("drill reports zero injections fired")
	}
	if resp.Result == nil || resp.Result.Output == "" {
		t.Errorf("healed drill has no result: %+v", resp.Result)
	}
	if chaos.Active() {
		t.Error("injection still armed after the drill returned")
	}

	// The healed run's observables match an uninjected run exactly.
	prog, err := nascent.Compile(progOK, nascent.Options{BoundsChecks: true, Filename: "input.mf"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Output != want.Output || resp.Result.Checks != want.Checks {
		t.Errorf("healed run diverges: output %q checks %d, want %q / %d",
			resp.Result.Output, resp.Result.Checks, want.Output, want.Checks)
	}
}

// TestDrillQuarantineRoundTrip is the replay-spec contract end to end:
// inject an unhealable fault via POST /drill, read the exact
// "seed:rate[:site]" spec back out of the typed error body, re-parse
// it, and replay it against a fresh supervised pool to reproduce the
// same quarantine — the path an operator follows from a production log
// line to `nacc -chaos`.
func TestDrillQuarantineRoundTrip(t *testing.T) {
	if chaos.Active() {
		t.Fatal("chaos already enabled")
	}
	s := newTestServer(t, func(c *Config) { c.AllowDrill = true })
	spec := chaos.Spec{Seed: 7, Rate: 1, Site: chaos.SiteWorkerKill} // rate 1: every attempt dies

	var resp DrillResponse
	w := do(t, s, "POST", "/drill", DrillRequest{
		Spec: spec.String(),
		Run:  RunRequest{CompileRequest: CompileRequest{Source: progOK}},
	}, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if resp.Error == nil {
		t.Fatalf("rate-1 worker-kill drill did not fail: %+v", resp)
	}
	if resp.Error.Class != ClassPoisoned {
		t.Fatalf("error class = %q, want %q", resp.Error.Class, ClassPoisoned)
	}
	if resp.Error.ChaosSpec != spec.String() {
		t.Fatalf("chaos_spec = %q, want the armed spec %q", resp.Error.ChaosSpec, spec.String())
	}
	if resp.Error.Attempts == 0 {
		t.Error("quarantine error has no attempt count")
	}
	if resp.Healed {
		t.Error("quarantined drill claims it healed")
	}

	// Replay: parse the spec out of the error body and reproduce the
	// quarantine on a fresh pool, exactly as -chaos would.
	parsed, err := chaos.ParseSpec(resp.Error.ChaosSpec)
	if err != nil {
		t.Fatalf("replay spec %q does not parse: %v", resp.Error.ChaosSpec, err)
	}
	if parsed != spec {
		t.Fatalf("replay spec round-trip changed: %+v vs %+v", parsed, spec)
	}
	release, err := chaos.AcquireDrill(parsed)
	if err != nil {
		t.Fatalf("arm replay: %v", err)
	}
	defer release()
	pool := evalpool.NewSupervised(evalpool.Config{Workers: 1})
	res := pool.Evaluate([]evalpool.Job{{
		Name: "drill", Source: progOK, Filename: "replay.mf",
		Opts: nascent.Options{BoundsChecks: true},
	}})
	var pe *evalpool.PoisonedInputError
	if !errors.As(res[0].Err, &pe) {
		t.Fatalf("replay err = %v, want PoisonedInputError", res[0].Err)
	}
	if pe.ChaosSpec != resp.Error.ChaosSpec {
		t.Errorf("replayed quarantine spec = %q, want %q", pe.ChaosSpec, resp.Error.ChaosSpec)
	}

	// The service-level metrics recorded the quarantine.
	release() // disarm before reading metrics so currentChaos is quiet
	var m metricsDoc
	do(t, s, "GET", "/metrics", nil, &m)
	if m.Pool.Quarantined == 0 || m.Pool.WorkerDeaths == 0 {
		t.Errorf("pool metrics missed the drill: %+v", m.Pool)
	}
	if m.Requests.Drill == 0 {
		t.Errorf("drill counter = %d, want > 0", m.Requests.Drill)
	}
}
