package service

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count settles back to at
// most base (plus slack for runtime background goroutines).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d now, %d at start", runtime.NumGoroutine(), base)
}

// TestLimiterSheds pins the admission contract: maxConcurrent slots,
// maxQueue waiters, everything beyond shed immediately with a typed
// 429, queued waiters cancellable with a typed timeout — and no
// goroutine leaks from any path.
func TestLimiterSheds(t *testing.T) {
	base := runtime.NumGoroutine()
	l := newLimiter(2, 1)

	// Fill both slots.
	rel1, apiErr := l.acquire(context.Background())
	if apiErr != nil {
		t.Fatalf("acquire 1: %v", apiErr)
	}
	rel2, apiErr := l.acquire(context.Background())
	if apiErr != nil {
		t.Fatalf("acquire 2: %v", apiErr)
	}

	// One waiter fits the queue.
	queuedCtx, cancelQueued := context.WithCancel(context.Background())
	defer cancelQueued()
	var wg sync.WaitGroup
	queuedErr := make(chan *Error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rel, apiErr := l.acquire(queuedCtx)
		if apiErr == nil {
			rel()
		}
		queuedErr <- apiErr
	}()
	// Wait for the waiter to be counted before probing the shed path.
	for i := 0; l.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if l.queued.Load() != 1 {
		t.Fatalf("queued = %d, want 1", l.queued.Load())
	}

	// The queue is full: the next request is shed, not blocked.
	start := time.Now()
	_, apiErr = l.acquire(context.Background())
	if apiErr == nil {
		t.Fatal("over-queue acquire admitted")
	}
	if apiErr.Class != ClassShed || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("shed error = %+v, want class %q status 429", apiErr, ClassShed)
	}
	if apiErr.RetryAfter <= 0 {
		t.Error("shed error has no Retry-After")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("shedding blocked for %v; must be immediate", d)
	}

	// Cancelling a queued waiter yields a typed resource error.
	cancelQueued()
	wg.Wait()
	if e := <-queuedErr; e == nil || e.Class != ClassResource {
		t.Fatalf("cancelled waiter error = %+v, want class %q", e, ClassResource)
	}

	rel1()
	rel2()
	rel2() // release is idempotent

	// All slots free again: admission works.
	rel3, apiErr := l.acquire(context.Background())
	if apiErr != nil {
		t.Fatalf("acquire after release: %v", apiErr)
	}
	rel3()

	st := l.stats()
	if st.Shed != 1 {
		t.Errorf("shed counter = %d, want 1", st.Shed)
	}
	waitGoroutines(t, base)
}

// TestHTTPShedding drives the shed path through the full HTTP stack:
// saturate slots and queue with held admissions, then observe a typed
// 429 with the Retry-After header on a real request.
func TestHTTPShedding(t *testing.T) {
	base := runtime.NumGoroutine()
	s := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 1
	})

	// Hold the only slot.
	release, apiErr := s.admit(context.Background())
	if apiErr != nil {
		t.Fatalf("admit: %v", apiErr)
	}
	// Park one request in the queue slot.
	queuedCtx, cancelQueued := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		rel, apiErr := s.limiter.acquire(queuedCtx)
		if apiErr == nil {
			rel()
		}
	}()
	for i := 0; s.limiter.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	// A real request now sheds with a typed 429.
	w := do(t, s, "POST", "/run", RunRequest{CompileRequest: CompileRequest{Source: progOK}}, nil)
	e := wantError(t, w, http.StatusTooManyRequests, ClassShed)
	if e.RetryAfter <= 0 {
		t.Error("shed body has no retry_after")
	}
	if got := w.Header().Get("Retry-After"); got == "" {
		t.Error("shed response has no Retry-After header")
	}

	cancelQueued()
	<-done
	release()

	// With the slot free the same request is admitted and succeeds.
	var resp RunResponse
	w = do(t, s, "POST", "/run", RunRequest{CompileRequest: CompileRequest{Source: progOK}}, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("post-release run status = %d, body %s", w.Code, w.Body.String())
	}
	waitGoroutines(t, base)
}
