package service

import (
	"context"
	"fmt"

	"nascent"
	"nascent/internal/chaos"
)

// Self-audit: a sampled, in-service differential check of production
// traffic. Every Config.AuditEvery-th successful /run on a non-tree
// engine is re-executed — off the hot path, on a background goroutine —
// against a fresh compile on the tree reference engine, and the six
// observable fields (output, instruction count, check count, trap
// state, trap note, trap class) are compared. The fresh compile is
// deliberately independent of every cache layer (in-memory, disk,
// pool frontend memo), so the audit catches not just engine
// divergence but a corrupted or stale cache entry serving wrong
// results with a valid checksum.
//
// A divergence is a SelfAuditViolation: the violation counter moves,
// the served (scheme, engine) pair's circuit is tripped open so
// subsequent traffic degrades to the reference configuration, and the
// violation is logged with enough detail to reproduce. A reference
// run that itself fails (budget, cancellation) is inconclusive — an
// audit error, never a violation.
//
// The service.audit.mismatch chaos site fires here, keyed by the
// served response's cache key: it corrupts the reference output after
// a healthy comparison run, drilling the whole detect-trip-degrade
// path without a real miscompile.

// SelfAuditViolation reports that a sampled production response
// diverged from a fresh reference execution of the same request. Its
// existence in a log or metrics stream means the service served a
// wrong answer — the breaker trip that accompanies it is damage
// control, not a fix.
type SelfAuditViolation struct {
	// CacheKey is the content address of the audited request.
	CacheKey string
	// Scheme / Engine are the served (post-degradation) configuration.
	Scheme string
	Engine string
	// Diff names the first diverging field, with both values.
	Diff string
}

func (e *SelfAuditViolation) Error() string {
	return fmt.Sprintf("service: self-audit violation on %s/%s (key %s): %s",
		e.Scheme, e.Engine, e.CacheKey, e.Diff)
}

// auditStats is the audit section of GET /metrics.
type auditStats struct {
	// Every echoes Config.AuditEvery (0 = auditing disabled).
	Every int `json:"every"`
	// Sampled counts runs selected for audit; Clean + Violations +
	// Errors converges on it as background audits complete.
	Sampled    uint64 `json:"sampled"`
	Clean      uint64 `json:"clean"`
	Violations uint64 `json:"violations"`
	Errors     uint64 `json:"errors"`
}

func (s *Server) auditSnapshot() auditStats {
	return auditStats{
		Every:      s.cfg.AuditEvery,
		Sampled:    s.nAuditSampled.Load(),
		Clean:      s.nAuditClean.Load(),
		Violations: s.nAuditViolations.Load(),
		Errors:     s.nAuditErrors.Load(),
	}
}

// maybeAudit samples one successful /run response for self-audit. The
// caller still holds its in-flight registration, which orders the
// auditWG.Add here before Drain's auditWG.Wait.
func (s *Server) maybeAudit(res *resolved, resp *RunResponse) {
	every := s.cfg.AuditEvery
	if every <= 0 || res.engine == nascent.EngineTree {
		// The reference engine auditing itself proves nothing.
		return
	}
	if s.auditTick.Add(1)%uint64(every) != 0 {
		return
	}
	s.nAuditSampled.Add(1)
	s.auditWG.Add(1)
	go s.audit(res, resp)
}

// audit re-executes one served request on the reference configuration
// and compares observables. Runs on its own goroutine under baseCtx:
// drain cancels it at the next engine poll point.
func (s *Server) audit(res *resolved, served *RunResponse) {
	defer s.auditWG.Done()
	defer func() {
		if rec := recover(); rec != nil {
			s.nAuditErrors.Add(1)
			s.cfg.Logf("nascentd: self-audit panic contained: %v", rec)
		}
	}()
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.Ceilings.MaxTimeout)
	defer cancel()

	opts := res.opts
	opts.Filename = res.filename
	if opts.Filename == "" {
		opts.Filename = "input.mf"
	}
	prog, err := nascent.Compile(res.source, opts)
	if err != nil {
		// The served run compiled this same (source, opts); a fresh
		// compile failing is itself suspicious, but inconclusive.
		s.nAuditErrors.Add(1)
		s.cfg.Logf("nascentd: self-audit reference compile failed (key %s): %v", served.Compile.CacheKey, err)
		return
	}
	runCfg := res.runCfg
	runCfg.Engine = nascent.EngineTree
	runCfg.Context = ctx
	ref, err := prog.RunWith(runCfg)
	if err != nil {
		if s.draining.Load() {
			return // drain cancelled the audit: abandoned, not an error
		}
		s.nAuditErrors.Add(1)
		s.cfg.Logf("nascentd: self-audit reference run failed (key %s): %v", served.Compile.CacheKey, err)
		return
	}
	if chaos.Active() && chaos.Fire(chaos.SiteAuditMismatch, served.Compile.CacheKey) {
		ref.Output += "\x00chaos: forced audit divergence"
	}
	if d := diffAudit(served, ref); d != "" {
		v := &SelfAuditViolation{
			CacheKey: served.Compile.CacheKey,
			Scheme:   res.opts.Scheme.String(),
			Engine:   res.engine.String(),
			Diff:     d,
		}
		s.nAuditViolations.Add(1)
		s.breaker.trip(res.opts.Scheme, res.engine)
		s.cfg.Logf("nascentd: %v", v)
		return
	}
	s.nAuditClean.Add(1)
}

// diffAudit compares the served response against the reference result
// and names the first diverging observable ("" when identical). The
// serve path and the reference run share the same clamped RunConfig,
// so output truncation and budget behavior cannot alias a divergence.
func diffAudit(served *RunResponse, ref nascent.RunResult) string {
	switch {
	case served.Output != ref.Output:
		return fmt.Sprintf("output: served %q, reference %q", served.Output, ref.Output)
	case served.Instructions != ref.Instructions:
		return fmt.Sprintf("instructions: served %d, reference %d", served.Instructions, ref.Instructions)
	case served.Checks != ref.Checks:
		return fmt.Sprintf("checks: served %d, reference %d", served.Checks, ref.Checks)
	case served.Trapped != ref.Trapped:
		return fmt.Sprintf("trapped: served %v, reference %v", served.Trapped, ref.Trapped)
	case served.TrapNote != ref.TrapNote:
		return fmt.Sprintf("trap_note: served %q, reference %q", served.TrapNote, ref.TrapNote)
	case served.TrapClass != string(ref.TrapClass):
		return fmt.Sprintf("trap_class: served %q, reference %q", served.TrapClass, ref.TrapClass)
	}
	return ""
}

// settleAudits waits for every in-flight background audit; tests use
// it to observe audit counters deterministically.
func (s *Server) settleAudits() { s.auditWG.Wait() }
