package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"nascent/internal/fleet"
)

// assertFields pins one wire object's exact field set, following the
// evalpool MetricsSnapshot convention: marshal to a map, require every
// expected key, and require no extras. Removing or renaming a field is
// a breaking API change and must show up as a deliberate edit here.
func assertFields(t *testing.T, label string, v any, want []string) {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("%s: marshal: %v", label, err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("%s: unmarshal: %v", label, err)
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Errorf("%s missing field %q", label, k)
		}
	}
	if len(m) != len(want) {
		t.Errorf("%s has %d fields, want %d: %v", label, len(m), len(want), m)
	}
}

// TestMetricsDocFields pins the top-level field set of GET /metrics,
// with every optional section populated except fleet (pinned
// separately — spawning worker processes is the fleet package's
// business).
func TestMetricsDocFields(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.ProgCacheDir = t.TempDir()
		c.AuditEvery = 1
	})
	// A tiered run populates the tiers section and one audit sample.
	req := RunRequest{CompileRequest: CompileRequest{Source: progOK, Engine: "tiered"}}
	if w := do(t, s, "POST", "/run", req, nil); w.Code != http.StatusOK {
		t.Fatalf("run status = %d, body %s", w.Code, w.Body.String())
	}
	s.settleAudits()

	var m map[string]any
	if w := do(t, s, "GET", "/metrics", nil, &m); w.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", w.Code)
	}
	want := []string{
		"uptime_ms", "draining", "requests", "admission", "cache",
		"disk_cache", "breaker", "pool", "tiers", "audit", "chaos",
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Errorf("metrics missing field %q", k)
		}
	}
	if len(m) != len(want) {
		t.Errorf("metrics has %d fields, want %d: %v", len(m), len(want), m)
	}

	audit, _ := m["audit"].(map[string]any)
	assertFields(t, "audit", audit, []string{"every", "sampled", "clean", "violations", "errors"})
	if audit["sampled"].(float64) != 1 || audit["clean"].(float64) != 1 {
		t.Errorf("audit section = %v, want one clean sample", audit)
	}

	requests, _ := m["requests"].(map[string]any)
	assertFields(t, "requests", requests, []string{
		"compile", "run", "verify", "report", "drill",
		"errors_4xx", "errors_5xx", "healed", "contained_panics",
	})

	disk, _ := m["disk_cache"].(map[string]any)
	assertFields(t, "disk_cache", disk, []string{
		"hits", "misses", "corrupt", "bad_version", "puts", "write_errors",
		"scrub_passes", "scrub_scanned", "scrub_corrupt", "scrub_removed",
	})
}

// TestFleetWireFields pins the fleet sections nascentd serves under
// /metrics (fleet.Stats) and /healthz (fleet.MemberHealth). The
// structs are marshaled directly: their wire shape is the contract,
// regardless of whether a fleet is running.
func TestFleetWireFields(t *testing.T) {
	st := fleet.Stats{Members: []fleet.MemberHealth{{PID: 42}}}
	assertFields(t, "fleet stats", st, []string{
		"hedges", "hedge_wins", "hedge_mismatches", "skew_degrades",
		"heartbeat_misses", "proactive_respawns", "rolls", "members",
	})
	assertFields(t, "fleet member", st.Members[0], []string{
		"id", "up", "pid", "score", "latency_ewma_ms", "consec_fails",
		"heartbeat_misses", "beats", "last_beat_age_ms",
		"proto_version", "progio_version", "skewed", "draining",
		"respawns", "in_flight",
	})
}

// TestHealthzFields pins GET /healthz: the base field set without a
// fleet, and the fleet key's presence in the document type.
func TestHealthzFields(t *testing.T) {
	s := newTestServer(t, nil)
	var m map[string]any
	if w := do(t, s, "GET", "/healthz", nil, &m); w.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", w.Code)
	}
	assertFields(t, "healthz", m, []string{"status", "uptime_ms", "in_flight", "queued"})

	doc := healthDoc{Fleet: []fleet.MemberHealth{{}}}
	assertFields(t, "healthz with fleet", doc, []string{"status", "uptime_ms", "in_flight", "queued", "fleet"})
}
