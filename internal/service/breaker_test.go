package service

import (
	"testing"
	"time"

	"nascent"
)

// fakeClock drives the breaker's cooldown in tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	b := newBreaker(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

// TestBreakerLifecycle walks the full state machine: closed → trip
// after threshold consecutive quarantines → degraded service → probe
// after cooldown → close on probe success.
func TestBreakerLifecycle(t *testing.T) {
	b, clk := newTestBreaker(3, time.Minute)
	pair := func() (bool, bool) { return b.allow(nascent.ALL, nascent.EngineVMOpt) }
	report := func(probe, abnormal bool) { b.report(nascent.ALL, nascent.EngineVMOpt, probe, abnormal) }

	// Closed: requests pass verbatim.
	if deg, probe := pair(); deg || probe {
		t.Fatalf("fresh breaker: degraded=%v probe=%v", deg, probe)
	}

	// Two quarantines, then a success: the consecutive counter resets.
	report(false, true)
	report(false, true)
	report(false, false)
	report(false, true)
	report(false, true)
	if deg, _ := pair(); deg {
		t.Fatal("breaker tripped below threshold (success did not reset the streak)")
	}

	// Third consecutive quarantine trips it.
	report(false, true)
	if deg, _ := pair(); !deg {
		t.Fatal("breaker did not trip at threshold")
	}
	if st := b.stats(); st.Trips != 1 || len(st.Open) != 1 {
		t.Fatalf("stats after trip: %+v", st)
	}

	// Another pair is unaffected.
	if deg, _ := b.allow(nascent.Naive, nascent.EngineTree); deg {
		t.Fatal("unrelated pair degraded")
	}

	// Before the cooldown: still degraded, no probe.
	clk.advance(30 * time.Second)
	if deg, probe := pair(); !deg || probe {
		t.Fatalf("mid-cooldown: degraded=%v probe=%v", deg, probe)
	}

	// After the cooldown: exactly one probe goes through verbatim;
	// concurrent requests keep degrading while it is in flight.
	clk.advance(31 * time.Second)
	if deg, probe := pair(); deg || !probe {
		t.Fatalf("post-cooldown: degraded=%v probe=%v, want probe", deg, probe)
	}
	if deg, probe := pair(); !deg || probe {
		t.Fatalf("second request during probe: degraded=%v probe=%v", deg, probe)
	}

	// Probe succeeds: circuit closes, traffic flows verbatim again.
	report(true, false)
	if deg, probe := pair(); deg || probe {
		t.Fatalf("after successful probe: degraded=%v probe=%v", deg, probe)
	}
}

// TestBreakerFailedProbe: a failed probe re-opens the circuit and
// restarts the cooldown from the failure.
func TestBreakerFailedProbe(t *testing.T) {
	b, clk := newTestBreaker(2, time.Minute)
	report := func(probe, abnormal bool) { b.report(nascent.LLS, nascent.EngineVM, probe, abnormal) }
	pair := func() (bool, bool) { return b.allow(nascent.LLS, nascent.EngineVM) }

	report(false, true)
	report(false, true) // trips
	clk.advance(time.Minute)
	if _, probe := pair(); !probe {
		t.Fatal("no probe after cooldown")
	}
	report(true, true) // probe failed

	// Still open; the cooldown restarted, so just before it elapses
	// there is no new probe.
	clk.advance(time.Minute - time.Second)
	if deg, probe := pair(); !deg || probe {
		t.Fatalf("after failed probe: degraded=%v probe=%v", deg, probe)
	}
	clk.advance(2 * time.Second)
	if _, probe := pair(); !probe {
		t.Fatal("no second probe after restarted cooldown")
	}
	if st := b.stats(); st.Trips != 2 || st.Probes != 2 {
		t.Fatalf("stats: %+v, want 2 trips, 2 probes", st)
	}
}
