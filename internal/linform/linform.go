// Package linform decomposes integer IR expressions into canonical linear
// forms: Σ coef·atom + constant, where atoms are scalar variables or
// opaque non-affine subexpressions (array loads, products of variables,
// divisions, intrinsic calls).
//
// This is the algebra behind the paper's canonical range-check form (§2.2)
// and behind induction expressions (§2.3): both are linear forms, differing
// only in which atoms they range over.
package linform

import (
	"sort"

	"nascent/internal/ir"
)

// Form is a linear form: Terms (canonically sorted, merged, nonzero) plus
// a constant. The zero Form represents the constant 0.
type Form struct {
	Terms []ir.CheckTerm
	Const int64
}

// Decompose splits an Int-typed expression into a linear form. Non-affine
// subtrees become single atoms with coefficient 1 (possibly scaled by
// enclosing constant multiplications), so decomposition never fails.
func Decompose(e ir.Expr) Form {
	f := decompose(e)
	f.Terms = ir.NormalizeTerms(f.Terms)
	return f
}

func decompose(e ir.Expr) Form {
	switch e := e.(type) {
	case *ir.ConstInt:
		return Form{Const: e.V}
	case *ir.VarRef:
		return Form{Terms: []ir.CheckTerm{{Coef: 1, Atom: e}}}
	case *ir.Un:
		if e.Op == ir.OpNeg {
			return decompose(e.X).Scale(-1)
		}
	case *ir.Bin:
		switch e.Op {
		case ir.OpAdd:
			return decompose(e.L).Add(decompose(e.R))
		case ir.OpSub:
			return decompose(e.L).Add(decompose(e.R).Scale(-1))
		case ir.OpMul:
			l := decompose(e.L)
			r := decompose(e.R)
			if len(l.Terms) == 0 {
				return r.Scale(l.Const)
			}
			if len(r.Terms) == 0 {
				return l.Scale(r.Const)
			}
			// Non-affine product: opaque atom.
		}
	}
	return Form{Terms: []ir.CheckTerm{{Coef: 1, Atom: e}}}
}

// Scale returns k·f.
func (f Form) Scale(k int64) Form {
	if k == 0 {
		return Form{}
	}
	out := Form{Const: f.Const * k, Terms: make([]ir.CheckTerm, len(f.Terms))}
	for i, t := range f.Terms {
		out.Terms[i] = ir.CheckTerm{Coef: t.Coef * k, Atom: t.Atom}
	}
	return out
}

// Add returns f + g in canonical form.
func (f Form) Add(g Form) Form {
	terms := make([]ir.CheckTerm, 0, len(f.Terms)+len(g.Terms))
	terms = append(terms, f.Terms...)
	terms = append(terms, g.Terms...)
	return Form{Terms: ir.NormalizeTerms(terms), Const: f.Const + g.Const}
}

// Sub returns f − g in canonical form.
func (f Form) Sub(g Form) Form { return f.Add(g.Scale(-1)) }

// IsConst reports whether the form has no symbolic terms.
func (f Form) IsConst() bool { return len(f.Terms) == 0 }

// CoefOf returns the coefficient of the atom with the given key (0 if the
// atom does not appear).
func (f Form) CoefOf(atomKey string) int64 {
	for _, t := range f.Terms {
		if ir.Key(t.Atom) == atomKey {
			return t.Coef
		}
	}
	return 0
}

// Without returns the form with the atom of the given key removed.
func (f Form) Without(atomKey string) Form {
	out := Form{Const: f.Const}
	for _, t := range f.Terms {
		if ir.Key(t.Atom) != atomKey {
			out.Terms = append(out.Terms, t)
		}
	}
	return out
}

// SubstAtom replaces the atom with the given key by the form g, returning
// f.Without(key) + coef·g. If the atom is absent, f is returned unchanged.
func (f Form) SubstAtom(atomKey string, g Form) Form {
	coef := f.CoefOf(atomKey)
	if coef == 0 {
		return f
	}
	return f.Without(atomKey).Add(g.Scale(coef))
}

// Key returns the canonical family key of the form's terms (ignoring the
// constant).
func (f Form) Key() string { return ir.FamilyKey(f.Terms) }

// String renders the form for diagnostics, e.g. "2*n - 1".
func (f Form) String() string {
	if len(f.Terms) == 0 {
		return itoa(f.Const)
	}
	s := ir.TermsString(f.Terms)
	switch {
	case f.Const > 0:
		return s + " + " + itoa(f.Const)
	case f.Const < 0:
		return s + " - " + itoa(-f.Const)
	}
	return s
}

func itoa(v int64) string {
	// small helper to avoid importing strconv at each call site
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// ToExpr materializes the form as an IR expression tree (used to build
// guard expressions and to rebuild subscripts after substitution).
func (f Form) ToExpr() ir.Expr {
	var e ir.Expr
	add := func(x ir.Expr) {
		if e == nil {
			e = x
			return
		}
		e = &ir.Bin{Op: ir.OpAdd, L: e, R: x, Typ: ir.Int}
	}
	for _, t := range f.Terms {
		atom := ir.CloneExpr(t.Atom)
		switch {
		case t.Coef == 1:
			add(atom)
		case t.Coef == -1:
			if e == nil {
				add(&ir.Un{Op: ir.OpNeg, X: atom, Typ: ir.Int})
			} else {
				e = &ir.Bin{Op: ir.OpSub, L: e, R: atom, Typ: ir.Int}
			}
		default:
			add(&ir.Bin{Op: ir.OpMul, L: &ir.ConstInt{V: t.Coef}, R: atom, Typ: ir.Int})
		}
	}
	if f.Const != 0 || e == nil {
		add(&ir.ConstInt{V: f.Const})
	}
	return e
}

// Vars returns the sorted IDs of all scalar variables in the form.
func (f Form) Vars() []int {
	set := make(map[int]bool)
	for _, t := range f.Terms {
		ir.VarsUsed(t.Atom, set)
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
