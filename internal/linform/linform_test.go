package linform

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nascent/internal/ir"
)

// env provides a small pool of variables for building random expressions.
type env struct {
	prog *ir.Program
	vars []*ir.Var
}

func newEnv() *env {
	p := &ir.Program{}
	f := &ir.Func{Name: "t"}
	p.RegisterFunc(f)
	e := &env{prog: p}
	for _, n := range []string{"i", "j", "k", "n", "m"} {
		e.vars = append(e.vars, p.NewVar(n, ir.Int, false, false))
	}
	return e
}

func v(e *env, i int) ir.Expr { return &ir.VarRef{Var: e.vars[i%len(e.vars)]} }

func add(l, r ir.Expr) ir.Expr { return &ir.Bin{Op: ir.OpAdd, L: l, R: r, Typ: ir.Int} }
func sub(l, r ir.Expr) ir.Expr { return &ir.Bin{Op: ir.OpSub, L: l, R: r, Typ: ir.Int} }
func mul(l, r ir.Expr) ir.Expr { return &ir.Bin{Op: ir.OpMul, L: l, R: r, Typ: ir.Int} }
func ci(k int64) ir.Expr       { return &ir.ConstInt{V: k} }

func TestDecomposeBasics(t *testing.T) {
	e := newEnv()
	i := v(e, 0)

	cases := []struct {
		expr      ir.Expr
		wantConst int64
		wantTerms int
	}{
		{ci(7), 7, 0},
		{i, 0, 1},
		{add(i, ci(3)), 3, 1},
		{sub(i, ci(3)), -3, 1},
		{mul(ci(2), i), 0, 1},
		{mul(i, ci(2)), 0, 1},
		{add(mul(ci(2), i), add(v(e, 1), ci(5))), 5, 2},
		{sub(i, i), 0, 0},                 // i - i cancels
		{mul(add(i, ci(1)), ci(3)), 3, 1}, // 3i + 3
		{&ir.Un{Op: ir.OpNeg, X: i, Typ: ir.Int}, 0, 1},
	}
	for _, c := range cases {
		f := Decompose(c.expr)
		if f.Const != c.wantConst || len(f.Terms) != c.wantTerms {
			t.Errorf("Decompose(%s) = %s (const=%d, %d terms), want const=%d, %d terms",
				ir.ExprString(c.expr), f, f.Const, len(f.Terms), c.wantConst, c.wantTerms)
		}
	}
}

func TestDecomposeCoefficients(t *testing.T) {
	e := newEnv()
	i, j := v(e, 0), v(e, 1)
	// 2*(i + 3*j) - j + 4 = 2i + 5j + 4
	expr := add(sub(mul(ci(2), add(i, mul(ci(3), j))), j), ci(4))
	f := Decompose(expr)
	if f.Const != 4 || len(f.Terms) != 2 {
		t.Fatalf("got %s", f)
	}
	if f.CoefOf(ir.Key(i)) != 2 || f.CoefOf(ir.Key(j)) != 5 {
		t.Errorf("coefs: i=%d j=%d", f.CoefOf(ir.Key(i)), f.CoefOf(ir.Key(j)))
	}
}

func TestNonAffineBecomesAtom(t *testing.T) {
	e := newEnv()
	i, j := v(e, 0), v(e, 1)
	prod := mul(i, j)
	f := Decompose(add(prod, ci(2)))
	if f.Const != 2 || len(f.Terms) != 1 {
		t.Fatalf("got %s", f)
	}
	if ir.Key(f.Terms[0].Atom) != ir.Key(prod) {
		t.Error("product atom key mismatch")
	}
	// Division is opaque too.
	div := &ir.Bin{Op: ir.OpDiv, L: i, R: ci(2), Typ: ir.Int}
	f2 := Decompose(add(div, div))
	if len(f2.Terms) != 1 || f2.Terms[0].Coef != 2 {
		t.Errorf("i/2 + i/2 should merge into one atom with coef 2: %s", f2)
	}
}

func TestSubstAtom(t *testing.T) {
	e := newEnv()
	i, n := v(e, 0), v(e, 3)
	// f = 2i + 1; substitute i := n - 1  =>  2n - 1
	f := Decompose(add(mul(ci(2), i), ci(1)))
	g := Decompose(sub(n, ci(1)))
	got := f.SubstAtom(ir.Key(i), g)
	if got.Const != -1 || got.CoefOf(ir.Key(n)) != 2 || len(got.Terms) != 1 {
		t.Errorf("got %s", got)
	}
	// Absent atom: unchanged.
	same := f.SubstAtom("nope", g)
	if same.Key() != f.Key() || same.Const != f.Const {
		t.Error("substituting absent atom changed form")
	}
}

func TestToExprRoundTrip(t *testing.T) {
	e := newEnv()
	i, j := v(e, 0), v(e, 1)
	forms := []Form{
		Decompose(add(mul(ci(2), i), ci(1))),
		Decompose(sub(ci(10), j)),
		Decompose(ci(-4)),
		Decompose(add(i, j)),
		Decompose(sub(mul(ci(-3), i), ci(7))),
	}
	for _, f := range forms {
		back := Decompose(f.ToExpr())
		if back.Key() != f.Key() || back.Const != f.Const {
			t.Errorf("round trip: %s -> %s -> %s", f, ir.ExprString(f.ToExpr()), back)
		}
	}
}

func TestFormString(t *testing.T) {
	e := newEnv()
	i := v(e, 0)
	f := Decompose(add(mul(ci(2), i), ci(-1)))
	if got := f.String(); got != "2*i - 1" {
		t.Errorf("got %q", got)
	}
	if got := (Form{}).String(); got != "0" {
		t.Errorf("zero form: %q", got)
	}
}

// randomExpr builds a random integer expression of bounded depth.
func randomExpr(e *env, r *rand.Rand, depth int) ir.Expr {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return ci(int64(r.Intn(21) - 10))
		}
		return v(e, r.Intn(len(e.vars)))
	}
	l := randomExpr(e, r, depth-1)
	rr := randomExpr(e, r, depth-1)
	switch r.Intn(4) {
	case 0:
		return add(l, rr)
	case 1:
		return sub(l, rr)
	case 2:
		return mul(ci(int64(r.Intn(7)-3)), l)
	default:
		return mul(l, rr)
	}
}

// evalExpr evaluates an integer expression under an environment mapping
// var IDs to values.
func evalExpr(x ir.Expr, vals map[int]int64) int64 {
	switch x := x.(type) {
	case *ir.ConstInt:
		return x.V
	case *ir.VarRef:
		return vals[x.Var.ID]
	case *ir.Bin:
		l := evalExpr(x.L, vals)
		r := evalExpr(x.R, vals)
		switch x.Op {
		case ir.OpAdd:
			return l + r
		case ir.OpSub:
			return l - r
		case ir.OpMul:
			return l * r
		}
	case *ir.Un:
		return -evalExpr(x.X, vals)
	}
	panic("evalExpr: unexpected node")
}

// evalForm evaluates a linear form under the same environment, evaluating
// atoms with evalExpr.
func evalForm(f Form, vals map[int]int64) int64 {
	s := f.Const
	for _, t := range f.Terms {
		s += t.Coef * evalExpr(t.Atom, vals)
	}
	return s
}

// TestDecomposePreservesValue is the core property: decomposition is a
// semantics-preserving rewrite of the expression.
func TestDecomposePreservesValue(t *testing.T) {
	e := newEnv()
	r := rand.New(rand.NewSource(12345))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := randomExpr(e, rr, 4)
		vals := make(map[int]int64)
		for _, vv := range e.vars {
			vals[vv.ID] = int64(rr.Intn(41) - 20)
		}
		return evalExpr(x, vals) == evalForm(Decompose(x), vals)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: r}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestAddScaleProperties checks algebraic laws on random forms.
func TestAddScaleProperties(t *testing.T) {
	e := newEnv()
	prop := func(seed int64, k int8) bool {
		rr := rand.New(rand.NewSource(seed))
		f := Decompose(randomExpr(e, rr, 3))
		g := Decompose(randomExpr(e, rr, 3))
		vals := make(map[int]int64)
		for _, vv := range e.vars {
			vals[vv.ID] = int64(rr.Intn(21) - 10)
		}
		kk := int64(k)
		// (f+g)(x) == f(x)+g(x)
		if evalForm(f.Add(g), vals) != evalForm(f, vals)+evalForm(g, vals) {
			return false
		}
		// (k·f)(x) == k·f(x)
		if evalForm(f.Scale(kk), vals) != kk*evalForm(f, vals) {
			return false
		}
		// f−g == f+(−1·g)
		if evalForm(f.Sub(g), vals) != evalForm(f, vals)-evalForm(g, vals) {
			return false
		}
		// commutativity of Add (canonical keys equal)
		fg, gf := f.Add(g), g.Add(f)
		return fg.Key() == gf.Key() && fg.Const == gf.Const
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVars(t *testing.T) {
	e := newEnv()
	i, j := v(e, 0), v(e, 1)
	f := Decompose(add(mul(ci(2), i), mul(i, j))) // atoms: i, i*j
	ids := f.Vars()
	if len(ids) != 2 {
		t.Errorf("vars = %v, want both i and j", ids)
	}
}
