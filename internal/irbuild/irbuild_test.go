package irbuild

import (
	"strings"
	"testing"

	"nascent/internal/ir"
	"nascent/internal/parser"
	"nascent/internal/sem"
)

func build(t *testing.T, src string, checks bool) *ir.Program {
	t.Helper()
	f, err := parser.Parse("test.mf", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Analyze(f)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	p, err := Build(sp, Options{BoundsChecks: checks})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return p
}

func TestBuildSimpleAssign(t *testing.T) {
	p := build(t, "program p\n  i = 2 + 3\nend\n", true)
	main := p.Main()
	if !main.IsMain {
		t.Error("main flag not set")
	}
	dump := main.Dump()
	if !strings.Contains(dump, "i = 5") {
		t.Errorf("missing assignment:\n%s", dump)
	}
}

func TestNaiveCheckInsertionCounts(t *testing.T) {
	// One store with 1 subscript -> 2 checks; one load -> 2 checks.
	p := build(t, `program p
  real a(10)
  a(i) = a(j) + 1.0
end
`, true)
	if got := p.CountChecks(); got != 4 {
		t.Errorf("got %d checks, want 4\n%s", got, p.Dump())
	}
}

func TestChecksDisabled(t *testing.T) {
	p := build(t, `program p
  real a(10)
  a(i) = a(j) + 1.0
end
`, false)
	if got := p.CountChecks(); got != 0 {
		t.Errorf("got %d checks, want 0", got)
	}
}

func TestCheckCanonicalForm(t *testing.T) {
	// Paper Figure 1: integer A(5:10); A(2*n) and A(2*n-1).
	p := build(t, `program p
  integer a(5:10)
  a(2*n) = 0
  a(2*n - 1) = 1
end
`, true)
	dump := p.Main().Dump()
	// A(2*n): lower check -2n <= -5, upper check 2n <= 10.
	for _, want := range []string{
		"check (-2*n <= -5)",
		"check (2*n <= 10)",
		// A(2*n-1): e >= 5 => -2n+1 <= -5 => -2n <= -6; e <= 10 => 2n <= 11.
		"check (-2*n <= -6)",
		"check (2*n <= 11)",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestSameFamilyForShiftedSubscripts(t *testing.T) {
	// 2*n and 2*n-1 upper checks must share a family (constants 10, 11).
	p := build(t, `program p
  integer a(5:10)
  a(2*n) = 0
  a(2*n - 1) = 1
end
`, true)
	fams := make(map[string][]int64)
	p.Main().ForEachStmt(func(_ *ir.Block, _ int, s ir.Stmt) {
		if c, ok := s.(*ir.CheckStmt); ok {
			fams[c.Family()] = append(fams[c.Family()], c.Const)
		}
	})
	if len(fams) != 2 {
		t.Errorf("got %d families, want 2 (one upper 2n, one lower -2n): %v", len(fams), fams)
	}
}

func TestMultiDimChecks(t *testing.T) {
	p := build(t, `program p
  real a(10, 0:20)
  a(i, j) = 1.0
end
`, true)
	if got := p.CountChecks(); got != 4 {
		t.Errorf("got %d checks, want 4 (2 dims x lower+upper)", got)
	}
	dump := p.Main().Dump()
	for _, want := range []string{
		"check (-i <= -1)", "check (i <= 10)",
		"check (-j <= 0)", "check (j <= 20)",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("missing %q:\n%s", want, dump)
		}
	}
}

func TestDoLoopShape(t *testing.T) {
	p := build(t, `program p
  integer i
  real a(100)
  do i = 1, 50
    a(i) = 1.0
  enddo
end
`, true)
	main := p.Main()
	if len(main.DoLoops) != 1 {
		t.Fatalf("got %d do loops, want 1", len(main.DoLoops))
	}
	dl := main.DoLoops[0]
	if dl.Var.Name != "i" || dl.Step != 1 {
		t.Errorf("loop var=%s step=%d", dl.Var.Name, dl.Step)
	}
	if _, ok := dl.Limit.(*ir.ConstInt); !ok {
		t.Errorf("constant limit should stay a constant, got %T", dl.Limit)
	}
	// Header must branch on i <= 50.
	ifTerm, ok := dl.Header.Term.(*ir.If)
	if !ok {
		t.Fatalf("header terminator is %T", dl.Header.Term)
	}
	if ir.ExprString(ifTerm.Cond) != "(i <= 50)" {
		t.Errorf("header cond = %s", ir.ExprString(ifTerm.Cond))
	}
	// Latch increments and jumps back to header.
	if g, ok := dl.Latch.Term.(*ir.Goto); !ok || g.Target != dl.Header {
		t.Error("latch does not jump to header")
	}
}

func TestDoLoopSimpleVarBoundNotCopied(t *testing.T) {
	p := build(t, `program p
  integer i, n
  real a(100)
  n = 50
  do i = 1, n
    a(i) = 1.0
  enddo
end
`, true)
	dl := p.Main().DoLoops[0]
	vr, ok := dl.Limit.(*ir.VarRef)
	if !ok || vr.Var.Name != "n" {
		t.Errorf("limit should be the variable n, got %s", ir.ExprString(dl.Limit))
	}
}

func TestDoLoopModifiedBoundCopied(t *testing.T) {
	p := build(t, `program p
  integer i, n
  n = 50
  do i = 1, n
    n = n - 1
  enddo
end
`, true)
	dl := p.Main().DoLoops[0]
	vr, ok := dl.Limit.(*ir.VarRef)
	if !ok || !vr.Var.Temp {
		t.Errorf("modified bound must be copied to a temp, got %s", ir.ExprString(dl.Limit))
	}
}

func TestDoLoopInvariantExprBoundKept(t *testing.T) {
	// Paper Figure 6: "do j = 1, 2*n" keeps 2*n so hoisted checks share
	// the family of n and constant-fold.
	p := build(t, `program p
  integer i, n
  do i = 1, 2*n
    j = i
  enddo
end
`, true)
	dl := p.Main().DoLoops[0]
	if ir.ExprString(dl.Limit) != "(2 * n)" {
		t.Errorf("invariant expression bound should be kept, got %s", ir.ExprString(dl.Limit))
	}
}

func TestDoLoopExprBoundOverModifiedVarCopied(t *testing.T) {
	p := build(t, `program p
  integer i, n
  do i = 1, 2*n
    n = n - 1
  enddo
end
`, true)
	dl := p.Main().DoLoops[0]
	vr, ok := dl.Limit.(*ir.VarRef)
	if !ok || !vr.Var.Temp {
		t.Errorf("bound over a modified variable must be copied, got %s", ir.ExprString(dl.Limit))
	}
}

func TestNegativeStep(t *testing.T) {
	p := build(t, `program p
  integer i
  do i = 10, 1, -1
    j = i
  enddo
end
`, true)
	dl := p.Main().DoLoops[0]
	if dl.Step != -1 {
		t.Fatalf("step = %d", dl.Step)
	}
	cond := dl.Header.Term.(*ir.If).Cond
	if ir.ExprString(cond) != "(i >= 1)" {
		t.Errorf("negative-step cond = %s", ir.ExprString(cond))
	}
}

func TestWhileShape(t *testing.T) {
	p := build(t, `program p
  integer i
  while (i < 10)
    i = i + 1
  endwhile
end
`, true)
	dump := p.Main().Dump()
	if !strings.Contains(dump, "if (i < 10) goto") {
		t.Errorf("missing while header:\n%s", dump)
	}
	if len(p.Main().DoLoops) != 0 {
		t.Error("while loop recorded as do loop")
	}
}

func TestIfLowering(t *testing.T) {
	p := build(t, `program p
  if (i < 5) then
    j = 1
  else
    j = 2
  endif
  k = 3
end
`, true)
	main := p.Main()
	// entry branches; both arms converge on a join block assigning k.
	ifTerm, ok := main.Entry().Term.(*ir.If)
	if !ok {
		t.Fatalf("entry terminator %T", main.Entry().Term)
	}
	if ifTerm.Then == ifTerm.Else {
		t.Error("then and else identical")
	}
}

func TestCallLoweringConvertsArgs(t *testing.T) {
	p := build(t, `program p
  call f(1, 2.5)
end
subroutine f(n, x)
  real x
  y = x + float(n)
end
`, true)
	f := p.FuncByName("f")
	if f == nil || len(f.Params) != 2 {
		t.Fatalf("subroutine f: %+v", f)
	}
	if f.Params[0].Type != ir.Int || f.Params[1].Type != ir.Float {
		t.Errorf("param types: %v %v", f.Params[0].Type, f.Params[1].Type)
	}
}

func TestImplicitConversionOnAssign(t *testing.T) {
	p := build(t, `program p
  x = 1
  i = 2.5
end
`, true)
	dump := p.Main().Dump()
	if !strings.Contains(dump, "x = float(1)") {
		t.Errorf("int->real conversion missing:\n%s", dump)
	}
	if !strings.Contains(dump, "i = int(2.5)") {
		t.Errorf("real->int conversion missing:\n%s", dump)
	}
}

func TestReturnLowering(t *testing.T) {
	p := build(t, `program p
  i = 1
  return
  i = 2
end
`, true)
	// The statement after return is unreachable and removed.
	dump := p.Main().Dump()
	if strings.Contains(dump, "i = 2") {
		t.Errorf("unreachable code survived:\n%s", dump)
	}
}

func TestChecksInConditions(t *testing.T) {
	p := build(t, `program p
  real a(10)
  if (a(i) > 0.0) then
    j = 1
  endif
end
`, true)
	if got := p.CountChecks(); got != 2 {
		t.Errorf("got %d checks for condition load, want 2", got)
	}
}

func TestNestedSubscriptChecksOrder(t *testing.T) {
	// a(b(i)): checks for b(i) must precede checks for a(...).
	p := build(t, `program p
  integer b(5)
  real a(10)
  x = a(b(i))
end
`, true)
	var notes []string
	p.Main().ForEachStmt(func(_ *ir.Block, _ int, s ir.Stmt) {
		if c, ok := s.(*ir.CheckStmt); ok {
			notes = append(notes, c.Note)
		}
	})
	if len(notes) != 4 {
		t.Fatalf("got %d checks, want 4: %v", len(notes), notes)
	}
	if !strings.HasPrefix(notes[0], "b") || !strings.HasPrefix(notes[2], "a") {
		t.Errorf("check order wrong: %v", notes)
	}
}

func TestGlobalsSharedAcrossFuncs(t *testing.T) {
	p := build(t, `program p
  integer total
  total = 0
  call bump()
end
subroutine bump()
  total = total + 1
end
`, true)
	var mainVar, subVar *ir.Var
	p.Main().ForEachStmt(func(_ *ir.Block, _ int, s ir.Stmt) {
		if a, ok := s.(*ir.AssignStmt); ok && a.Dst.Name == "total" {
			mainVar = a.Dst
		}
	})
	p.FuncByName("bump").ForEachStmt(func(_ *ir.Block, _ int, s ir.Stmt) {
		if a, ok := s.(*ir.AssignStmt); ok && a.Dst.Name == "total" {
			subVar = a.Dst
		}
	})
	if mainVar == nil || subVar == nil || mainVar != subVar {
		t.Errorf("global total not shared: %p vs %p", mainVar, subVar)
	}
}

func TestParameterConstantInlined(t *testing.T) {
	p := build(t, `program p
  parameter n = 42
  i = n + 1
end
`, true)
	dump := p.Main().Dump()
	if !strings.Contains(dump, "i = 43") {
		t.Errorf("parameter not inlined and folded:\n%s", dump)
	}
}
