// Package irbuild lowers analyzed MF programs to the CFG IR, inserting
// naive array subscript range checks.
//
// Check insertion follows the unoptimized regime of the paper: every array
// access (load or store) receives one lower-bound and one upper-bound
// check per dimension, placed immediately before the statement containing
// the access, in the paper's canonical form (§2.2). All later optimization
// starts from this naive program.
package irbuild

import (
	"fmt"
	"sort"

	"nascent/internal/ast"
	"nascent/internal/chaos"
	"nascent/internal/ir"
	"nascent/internal/linform"
	"nascent/internal/sem"
	"nascent/internal/source"
)

// Options control lowering.
type Options struct {
	// BoundsChecks inserts naive range checks for every array access.
	BoundsChecks bool
}

// Build lowers prog to IR. The returned program has predecessor lists
// computed and unreachable blocks removed, but critical edges not yet
// split (the optimizer does that).
func Build(prog *sem.Program, opts Options) (*ir.Program, error) {
	if chaos.Active() {
		key := ""
		if prog.Main != nil {
			key = prog.Main.Name
		}
		if chaos.Fire(chaos.SiteLowerPanic, key) {
			// Contained by the nascent.CompileTimed boundary as an
			// *InternalError with stage "lower".
			panic(chaos.PanicValue(chaos.SiteLowerPanic, key))
		}
	}
	b := &builder{
		sem:  prog,
		opts: opts,
		p:    &ir.Program{},
		vars: make(map[*sem.Symbol]*ir.Var),
		arrs: make(map[*sem.Symbol]*ir.Array),
		funs: make(map[*sem.Unit]*ir.Func),
	}

	// Globals first, in deterministic order.
	b.declareSymbols(prog.Main, true)

	// Create all funcs (empty) so calls can reference them.
	for _, u := range prog.Units {
		f := &ir.Func{Name: u.Name, IsMain: u == prog.Main}
		b.p.RegisterFunc(f)
		b.funs[u] = f
		if u != prog.Main {
			b.declareSymbols(u, false)
		}
	}

	// Attach params/locals to every func before lowering any body, so
	// calls can reference callee parameter types.
	for _, u := range prog.Units {
		b.attachSymbols(u)
	}

	// Lower bodies.
	for _, u := range prog.Units {
		if err := b.lowerUnit(u); err != nil {
			return nil, err
		}
	}
	return b.p, nil
}

// failf records the first lowering failure with its source position.
// Lowering stops emitting further statements once an error is recorded;
// Build returns it.
func (b *builder) failf(pos source.Pos, format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
	}
}

type builder struct {
	sem  *sem.Program
	opts Options
	p    *ir.Program
	vars map[*sem.Symbol]*ir.Var
	arrs map[*sem.Symbol]*ir.Array
	funs map[*sem.Unit]*ir.Func

	// per-unit lowering state
	f     *ir.Func
	unit  *sem.Unit
	cur   *ir.Block
	exit  *ir.Block
	tempN int
	err   error // first lowering failure (see failf)
}

func irType(t sem.Type) ir.Type {
	if t == sem.Integer {
		return ir.Int
	}
	return ir.Float
}

// declareSymbols creates IR vars/arrays for a unit's symbols in sorted
// order so IDs are deterministic.
func (b *builder) declareSymbols(u *sem.Unit, global bool) {
	table := u.Locals()
	if global {
		table = u.Program().Globals()
	}
	names := make([]string, 0, len(table))
	for n := range table {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := table[n]
		switch s.Kind {
		case sem.ScalarSym:
			b.vars[s] = b.p.NewVar(s.Name, irType(s.Type), global, false)
		case sem.ArraySym:
			dims := make([]ir.Bounds, len(s.Dims))
			for i, d := range s.Dims {
				dims[i] = ir.Bounds{Lo: d.Lo, Hi: d.Hi}
			}
			b.arrs[s] = b.p.NewArray(s.Name, irType(s.Type), dims, global)
		}
	}
}

// attachSymbols records a unit's locals, local arrays, and parameters on
// its (still empty) Func.
func (b *builder) attachSymbols(u *sem.Unit) {
	f := b.funs[u]
	table := u.Locals()
	if u == b.sem.Main {
		table = u.Program().Globals()
	}
	names := make([]string, 0, len(table))
	for n := range table {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := table[n]
		if v, ok := b.vars[s]; ok && !v.Global {
			f.Locals = append(f.Locals, v)
		}
		if a, ok := b.arrs[s]; ok && !a.Global {
			f.Arrays = append(f.Arrays, a)
		}
	}
	for _, ps := range u.Params {
		f.Params = append(f.Params, b.vars[ps])
	}
}

func (b *builder) lowerUnit(u *sem.Unit) error {
	f := b.funs[u]
	b.f = f
	b.unit = u
	b.tempN = 0

	entry := f.NewBlock("entry")
	b.exit = f.NewBlock("exit")
	b.exit.Term = &ir.Ret{}
	b.cur = entry

	b.lowerStmts(u.AST.Body)
	if b.err != nil {
		return fmt.Errorf("irbuild %s: %w", f.Name, b.err)
	}
	if b.cur.Term == nil {
		b.cur.Term = &ir.Goto{Target: b.exit}
	}
	f.RemoveUnreachable()
	if err := f.Verify(); err != nil {
		return fmt.Errorf("irbuild %s: %w", f.Name, err)
	}
	return nil
}

func (b *builder) newTemp(prefix string) *ir.Var {
	b.tempN++
	return b.f.NewTemp(fmt.Sprintf("%s.%s%d", prefix, b.f.Name, b.tempN), ir.Int)
}

func (b *builder) emit(s ir.Stmt) { b.cur.Stmts = append(b.cur.Stmts, s) }

// startBlock finishes the current block with a goto to next (if not
// already terminated) and makes next current.
func (b *builder) startBlock(next *ir.Block) {
	if b.cur.Term == nil {
		b.cur.Term = &ir.Goto{Target: next}
	}
	b.cur = next
}

func (b *builder) lowerStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		if b.err != nil {
			return
		}
		b.lowerStmt(s)
	}
}

func (b *builder) lowerStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		b.lowerAssign(s)
	case *ast.IfStmt:
		b.lowerIf(s)
	case *ast.DoStmt:
		b.lowerDo(s)
	case *ast.WhileStmt:
		b.lowerWhile(s)
	case *ast.CallStmt:
		callee := b.funs[b.sem.Subroutine(s.Name)]
		args := make([]ir.Expr, len(s.Args))
		for i, a := range s.Args {
			e := b.lowerExpr(a)
			b.emitChecksFor(e, s.Pos())
			want := callee.Params[i].Type
			args[i] = b.convert(e, want)
		}
		b.emit(&ir.CallStmt{Callee: callee, Args: args, SrcPos: s.Pos()})
	case *ast.PrintStmt:
		args := make([]ir.Expr, len(s.Args))
		for i, a := range s.Args {
			args[i] = b.lowerExpr(a)
			b.emitChecksFor(args[i], s.Pos())
		}
		b.emit(&ir.PrintStmt{Args: args, SrcPos: s.Pos()})
	case *ast.ReturnStmt:
		b.cur.Term = &ir.Goto{Target: b.exit}
		b.cur = b.f.NewBlock("afterreturn")
	default:
		b.failf(s.Pos(), "unknown statement %T", s)
	}
}

func (b *builder) lowerAssign(s *ast.AssignStmt) {
	sym := b.unit.Lookup(s.Name)
	val := b.lowerExpr(s.Value)
	if len(s.Indexes) == 0 {
		dst := b.vars[sym]
		b.emitChecksFor(val, s.Pos())
		b.emit(&ir.AssignStmt{Dst: dst, Src: b.convert(val, dst.Type), SrcPos: s.Pos()})
		return
	}
	arr := b.arrs[sym]
	idx := make([]ir.Expr, len(s.Indexes))
	for i, ix := range s.Indexes {
		idx[i] = b.lowerExpr(ix)
		b.emitChecksFor(idx[i], s.Pos())
	}
	b.emitChecksFor(val, s.Pos())
	b.emitBoundsChecks(arr, idx, s.Pos())
	b.emit(&ir.StoreStmt{Arr: arr, Idx: idx, Val: b.convert(val, arr.Elem), SrcPos: s.Pos()})
}

func (b *builder) lowerIf(s *ast.IfStmt) {
	cond := b.lowerExpr(s.Cond)
	b.emitChecksFor(cond, s.Pos())
	thenB := b.f.NewBlock("then")
	joinB := b.f.NewBlock("join")
	elseB := joinB
	if len(s.Else) > 0 {
		elseB = b.f.NewBlock("else")
	}
	b.cur.Term = &ir.If{Cond: cond, Then: thenB, Else: elseB}

	b.cur = thenB
	b.lowerStmts(s.Then)
	b.startBlock(joinB)

	if len(s.Else) > 0 {
		b.cur = elseB
		b.lowerStmts(s.Else)
		if b.cur.Term == nil {
			b.cur.Term = &ir.Goto{Target: joinB}
		}
		b.cur = joinB
	}
}

// simpleInvariantBound reports whether e can be used directly as a DO
// bound without copying to a temp: every scalar it reads is unassigned in
// the loop body, and every array it loads is unmodified there (calls make
// globals and global arrays unsafe). Keeping the original bound
// expression (e.g. 2*n in paper Figure 6) lets hoisted checks share
// families across loops and constant-fold; modified bounds are copied to
// a temp to preserve Fortran's fixed-trip-count semantics.
func (b *builder) simpleInvariantBound(e ir.Expr, body []ast.Stmt) bool {
	// Collect what the body can modify.
	assigned := make(map[string]bool)
	stored := make(map[string]bool)
	hasCall := false
	ast.WalkStmts(body, func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if len(s.Indexes) == 0 {
				assigned[s.Name] = true
			} else {
				stored[s.Name] = true
			}
		case *ast.DoStmt:
			assigned[s.Var] = true
		case *ast.CallStmt:
			hasCall = true
		}
	})
	safe := true
	ir.WalkExpr(e, func(x ir.Expr) {
		switch x := x.(type) {
		case *ir.VarRef:
			if assigned[x.Var.Name] || (hasCall && x.Var.Global) {
				safe = false
			}
		case *ir.Load:
			if stored[x.Arr.Name] || (hasCall && x.Arr.Global) {
				safe = false
			}
		}
	})
	return safe
}

func (b *builder) lowerDo(s *ast.DoStmt) {
	sym := b.unit.Lookup(s.Var)
	iv := b.vars[sym]

	step := int64(1)
	if s.Step != nil {
		v, ok := b.sem.EvalConst(b.unit, s.Step)
		if !ok {
			b.failf(s.Pos(), "do step must be a compile-time constant")
			return
		}
		if v == 0 {
			// sem rejects a literal zero; this catches folded-to-zero
			// steps so the nonzero-step IR invariant always holds.
			b.failf(s.Pos(), "do step must be nonzero")
			return
		}
		step = v
	}

	lo := b.lowerExpr(s.Lo)
	b.emitChecksFor(lo, s.Pos())
	hi := b.lowerExpr(s.Hi)
	b.emitChecksFor(hi, s.Pos())

	// Fortran semantics: the limit is fixed at loop entry. Use the bound
	// expression directly when provably invariant, else copy to a temp.
	limit := hi
	if !b.simpleInvariantBound(hi, s.Body) {
		t := b.newTemp("lim")
		b.emit(&ir.AssignStmt{Dst: t, Src: hi, SrcPos: s.Pos()})
		limit = &ir.VarRef{Var: t}
	}
	loVal := lo
	if !b.simpleInvariantBound(lo, s.Body) {
		t := b.newTemp("lo")
		b.emit(&ir.AssignStmt{Dst: t, Src: lo, SrcPos: s.Pos()})
		loVal = &ir.VarRef{Var: t}
	}
	b.emit(&ir.AssignStmt{Dst: iv, Src: loVal, SrcPos: s.Pos()})

	pre := b.cur
	header := b.f.NewBlock("dohead")
	body := b.f.NewBlock("dobody")
	after := b.f.NewBlock("doexit")
	b.startBlock(header)

	condOp := ir.OpLe
	if step < 0 {
		condOp = ir.OpGe
	}
	header.Term = &ir.If{
		Cond: &ir.Bin{Op: condOp, L: &ir.VarRef{Var: iv}, R: ir.CloneExpr(limit), Typ: ir.Bool},
		Then: body,
		Else: after,
	}

	info := &ir.DoLoopInfo{
		Preheader: pre,
		Header:    header,
		BodyEntry: body,
		Var:       iv,
		Lo:        ir.CloneExpr(loVal),
		Limit:     ir.CloneExpr(limit),
		Step:      step,
	}
	// Record outer loops before their nested loops.
	b.f.DoLoops = append(b.f.DoLoops, info)

	b.cur = body
	b.lowerStmts(s.Body)
	info.Latch = b.cur
	b.emit(&ir.AssignStmt{
		Dst:    iv,
		Src:    &ir.Bin{Op: ir.OpAdd, L: &ir.VarRef{Var: iv}, R: &ir.ConstInt{V: step}, Typ: ir.Int},
		SrcPos: s.Pos(),
	})
	b.cur.Term = &ir.Goto{Target: header}
	b.cur = after
}

func (b *builder) lowerWhile(s *ast.WhileStmt) {
	header := b.f.NewBlock("whilehead")
	body := b.f.NewBlock("whilebody")
	after := b.f.NewBlock("whileexit")
	b.startBlock(header)

	cond := b.lowerExpr(s.Cond)
	b.emitChecksFor(cond, s.Pos())
	header.Term = &ir.If{Cond: cond, Then: body, Else: after}

	b.cur = body
	b.lowerStmts(s.Body)
	if b.cur.Term == nil {
		b.cur.Term = &ir.Goto{Target: header}
	}
	b.cur = after
}

// ---------------------------------------------------------------------------
// Expressions

var binOps = map[ast.Op]ir.Op{
	ast.Add: ir.OpAdd, ast.Sub: ir.OpSub, ast.Mul: ir.OpMul, ast.Div: ir.OpDiv,
	ast.Eq: ir.OpEq, ast.Ne: ir.OpNe, ast.Lt: ir.OpLt, ast.Le: ir.OpLe,
	ast.Gt: ir.OpGt, ast.Ge: ir.OpGe, ast.And: ir.OpAnd, ast.Or: ir.OpOr,
}

// convert coerces e to the wanted type, inserting int/float conversions.
func (b *builder) convert(e ir.Expr, want ir.Type) ir.Expr {
	have := e.Type()
	if have == want {
		return e
	}
	switch {
	case have == ir.Int && want == ir.Float:
		return &ir.Call{Fn: ir.IntrFloat, Args: []ir.Expr{e}, Typ: ir.Float}
	case have == ir.Float && want == ir.Int:
		return &ir.Call{Fn: ir.IntrInt, Args: []ir.Expr{e}, Typ: ir.Int}
	}
	return e
}

func (b *builder) lowerExpr(e ast.Expr) ir.Expr {
	switch e := e.(type) {
	case *ast.IntLit:
		return &ir.ConstInt{V: e.Value}
	case *ast.RealLit:
		return &ir.ConstFloat{V: e.Value}
	case *ast.Name:
		sym := b.unit.Lookup(e.Ident)
		if sym != nil && sym.Kind == sem.ConstSym {
			return &ir.ConstInt{V: sym.ConstVal}
		}
		return &ir.VarRef{Var: b.vars[sym]}
	case *ast.Index:
		return b.lowerIndex(e)
	case *ast.Unary:
		x := b.lowerExpr(e.X)
		if e.Op == ast.Not {
			return &ir.Un{Op: ir.OpNot, X: x, Typ: ir.Bool}
		}
		// Fold negation of constants so canonical forms stay tidy.
		if c, ok := x.(*ir.ConstInt); ok {
			return &ir.ConstInt{V: -c.V}
		}
		if c, ok := x.(*ir.ConstFloat); ok {
			return &ir.ConstFloat{V: -c.V}
		}
		return &ir.Un{Op: ir.OpNeg, X: x, Typ: x.Type()}
	case *ast.Binary:
		l := b.lowerExpr(e.L)
		r := b.lowerExpr(e.R)
		op := binOps[e.Op]
		switch {
		case op == ir.OpAnd || op == ir.OpOr:
			return &ir.Bin{Op: op, L: l, R: r, Typ: ir.Bool}
		case op.IsComparison():
			l, r = b.promote(l, r)
			return &ir.Bin{Op: op, L: l, R: r, Typ: ir.Bool}
		default:
			l, r = b.promote(l, r)
			// Fold integer constant arithmetic so canonical check forms
			// see constants (e.g. n/2 with constant n).
			if lc, ok := l.(*ir.ConstInt); ok {
				if rc, ok := r.(*ir.ConstInt); ok {
					if v, ok := foldInt(op, lc.V, rc.V); ok {
						return &ir.ConstInt{V: v}
					}
				}
			}
			return &ir.Bin{Op: op, L: l, R: r, Typ: l.Type()}
		}
	}
	b.failf(e.Pos(), "unknown expression %T", e)
	return &ir.ConstInt{V: 0}
}

func foldInt(op ir.Op, l, r int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return l + r, true
	case ir.OpSub:
		return l - r, true
	case ir.OpMul:
		return l * r, true
	case ir.OpDiv:
		if r != 0 {
			return l / r, true
		}
	}
	return 0, false
}

func (b *builder) promote(l, r ir.Expr) (ir.Expr, ir.Expr) {
	if l.Type() == ir.Float && r.Type() == ir.Int {
		return l, b.convert(r, ir.Float)
	}
	if l.Type() == ir.Int && r.Type() == ir.Float {
		return b.convert(l, ir.Float), r
	}
	return l, r
}

func (b *builder) lowerIndex(e *ast.Index) ir.Expr {
	if sym := b.unit.Lookup(e.Name); sym != nil && sym.Kind == sem.ArraySym {
		arr := b.arrs[sym]
		idx := make([]ir.Expr, len(e.Args))
		for i, a := range e.Args {
			idx[i] = b.lowerExpr(a)
		}
		return &ir.Load{Arr: arr, Idx: idx}
	}
	// Intrinsic call.
	fn := ir.IntrinsicByName[e.Name]
	args := make([]ir.Expr, len(e.Args))
	typ := ir.Int
	for i, a := range e.Args {
		args[i] = b.lowerExpr(a)
		if args[i].Type() == ir.Float {
			typ = ir.Float
		}
	}
	switch fn {
	case ir.IntrSqrt, ir.IntrFloat:
		typ = ir.Float
		for i := range args {
			args[i] = b.convert(args[i], ir.Float)
		}
	case ir.IntrInt:
		typ = ir.Int
	default:
		// mod/min/max/abs: promote all args to the common type.
		for i := range args {
			args[i] = b.convert(args[i], typ)
		}
	}
	return &ir.Call{Fn: fn, Args: args, Typ: typ}
}

// ---------------------------------------------------------------------------
// Range check insertion

// emitChecksFor inserts bounds checks for every array load inside e,
// innermost first (matching evaluation order).
func (b *builder) emitChecksFor(e ir.Expr, pos source.Pos) {
	if !b.opts.BoundsChecks {
		return
	}
	switch e := e.(type) {
	case *ir.Load:
		for _, ix := range e.Idx {
			b.emitChecksFor(ix, pos)
		}
		b.emitBoundsChecks(e.Arr, e.Idx, pos)
	case *ir.Bin:
		b.emitChecksFor(e.L, pos)
		b.emitChecksFor(e.R, pos)
	case *ir.Un:
		b.emitChecksFor(e.X, pos)
	case *ir.Call:
		for _, a := range e.Args {
			b.emitChecksFor(a, pos)
		}
	}
}

// cloneTerms deep-copies check terms so every CheckStmt owns its atom
// expression nodes (SSA maps each expression node occurrence to one SSA
// value, so nodes must never be shared between statements).
func cloneTerms(terms []ir.CheckTerm) []ir.CheckTerm {
	out := make([]ir.CheckTerm, len(terms))
	for i, t := range terms {
		out[i] = ir.CheckTerm{Coef: t.Coef, Atom: ir.CloneExpr(t.Atom)}
	}
	return out
}

// emitBoundsChecks inserts the lower and upper check for each dimension
// of an access arr(idx...), in the canonical form of paper §2.2:
//
//	lower: idx ≥ lo   ⇒   −terms(idx) ≤ const(idx) − lo
//	upper: idx ≤ hi   ⇒   +terms(idx) ≤ hi − const(idx)
func (b *builder) emitBoundsChecks(arr *ir.Array, idx []ir.Expr, pos source.Pos) {
	if !b.opts.BoundsChecks {
		return
	}
	for k, e := range idx {
		if k >= len(arr.Dims) {
			break
		}
		f := linform.Decompose(e)
		dim := arr.Dims[k]
		b.emit(&ir.CheckStmt{
			Terms:  cloneTerms(f.Scale(-1).Terms),
			Const:  f.Const - dim.Lo,
			Note:   fmt.Sprintf("%s dim %d lower", arr.Name, k+1),
			SrcPos: pos,
		})
		b.emit(&ir.CheckStmt{
			Terms:  cloneTerms(f.Terms),
			Const:  dim.Hi - f.Const,
			Note:   fmt.Sprintf("%s dim %d upper", arr.Name, k+1),
			SrcPos: pos,
		})
	}
}
