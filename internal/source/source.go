// Package source provides source positions and diagnostic reporting shared
// by every phase of the Nascent-Go compiler.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a position within a source file. Line and Col are 1-based; the
// zero Pos ("no position") prints as "-".
type Pos struct {
	Line int
	Col  int
}

// NoPos is the zero position, used for compiler-synthesized constructs.
var NoPos = Pos{}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Before reports whether p occurs before q in the file.
func (p Pos) Before(q Pos) bool {
	return p.Line < q.Line || (p.Line == q.Line && p.Col < q.Col)
}

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Error is a single diagnostic attached to a source position.
type Error struct {
	Pos  Pos
	Msg  string
	File string // optional file name
}

func (e *Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// ErrorList accumulates diagnostics. The zero value is ready to use.
type ErrorList struct {
	errs []*Error
}

// Add appends a diagnostic at pos.
func (l *ErrorList) Add(pos Pos, format string, args ...interface{}) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Len returns the number of accumulated diagnostics.
func (l *ErrorList) Len() int { return len(l.errs) }

// Errors returns the accumulated diagnostics in source order.
func (l *ErrorList) Errors() []*Error {
	sorted := make([]*Error, len(l.errs))
	copy(sorted, l.errs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Pos.Before(sorted[j].Pos) })
	return sorted
}

// Err returns an error summarizing the list, or nil if it is empty.
func (l *ErrorList) Err() error {
	if len(l.errs) == 0 {
		return nil
	}
	return l
}

// Error implements the error interface: all diagnostics joined by newlines.
func (l *ErrorList) Error() string {
	var b strings.Builder
	for i, e := range l.Errors() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}
