// Package sem performs semantic analysis of MF programs: symbol table
// construction, implicit typing, constant evaluation of parameter
// constants and array bounds, and type checking.
//
// MF scoping follows the simplified Fortran model used by the Nascent-Go
// reproduction: every name declared in the main program is a global
// visible in all subroutines; names declared in a subroutine (including
// its by-value formal parameters) are local. Undeclared scalars are
// implicitly typed by their first letter (i–n integer, otherwise real) and
// implicitly declared in the unit that uses them.
package sem

import (
	"fmt"

	"nascent/internal/ast"
	"nascent/internal/chaos"
	"nascent/internal/source"
)

// Type is the semantic type of an expression.
type Type int

// Expression types.
const (
	Invalid Type = iota
	Integer
	Real
	Logical
)

func (t Type) String() string {
	switch t {
	case Integer:
		return "integer"
	case Real:
		return "real"
	case Logical:
		return "logical"
	}
	return "invalid"
}

func fromAST(t ast.Type) Type {
	switch t {
	case ast.Integer:
		return Integer
	case ast.Real:
		return Real
	}
	return Invalid
}

// ImplicitType returns the Fortran implicit type for a name: identifiers
// beginning with i–n are integer, all others real.
func ImplicitType(name string) Type {
	if name == "" {
		return Real
	}
	c := name[0]
	if c >= 'i' && c <= 'n' {
		return Integer
	}
	return Real
}

// SymbolKind classifies entries in the symbol table.
type SymbolKind int

// Symbol kinds.
const (
	ScalarSym SymbolKind = iota
	ArraySym
	ConstSym
	SubroutineSym
)

func (k SymbolKind) String() string {
	switch k {
	case ScalarSym:
		return "scalar"
	case ArraySym:
		return "array"
	case ConstSym:
		return "constant"
	case SubroutineSym:
		return "subroutine"
	}
	return "?"
}

// DimBounds is the evaluated constant bounds of one array dimension.
type DimBounds struct {
	Lo, Hi int64
}

// Size returns the element count of the dimension.
func (d DimBounds) Size() int64 { return d.Hi - d.Lo + 1 }

// Symbol is one named entity.
type Symbol struct {
	Name     string
	Kind     SymbolKind
	Type     Type        // element type for arrays; value type for scalars/consts
	Dims     []DimBounds // arrays only
	ConstVal int64       // ConstSym only
	Global   bool        // declared in the main program
	IsParam  bool        // subroutine formal parameter
	Pos      source.Pos
}

// Len returns the total element count of an array symbol.
func (s *Symbol) Len() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		n *= d.Size()
	}
	return n
}

// Unit is the analyzed form of one program unit.
type Unit struct {
	AST     *ast.Unit
	Name    string
	Params  []*Symbol
	locals  map[string]*Symbol
	program *Program
}

// Program is the analyzed form of a whole MF file.
type Program struct {
	File    *ast.File
	Main    *Unit
	Units   []*Unit // Main first, subroutines after, in source order
	globals map[string]*Symbol
	subs    map[string]*Unit
}

// Globals returns the global symbols in deterministic (name-sorted) order.
// It is primarily for tooling; lookups should use Unit.Lookup.
func (p *Program) Globals() map[string]*Symbol { return p.globals }

// Subroutine returns the analyzed subroutine with the given name, or nil.
func (p *Program) Subroutine(name string) *Unit { return p.subs[name] }

// Lookup resolves a name in the unit: locals first, then globals, then
// subroutines. It returns nil if the name is unknown.
func (u *Unit) Lookup(name string) *Symbol {
	if s, ok := u.locals[name]; ok {
		return s
	}
	if s, ok := u.program.globals[name]; ok {
		return s
	}
	return nil
}

// Locals returns the unit's local symbol table (including parameters).
func (u *Unit) Locals() map[string]*Symbol { return u.locals }

// Program returns the enclosing analyzed program.
func (u *Unit) Program() *Program { return u.program }

// ---------------------------------------------------------------------------
// Analysis

// Analyze type-checks file and builds symbol tables. On error the returned
// program reflects partial analysis and the error lists all diagnostics.
func Analyze(file *ast.File) (*Program, error) {
	if chaos.Active() {
		if err := chaos.InjectError(chaos.SiteSemError, file.Name); err != nil {
			return nil, err
		}
	}
	var errs source.ErrorList
	p := &Program{
		File:    file,
		globals: make(map[string]*Symbol),
		subs:    make(map[string]*Unit),
	}
	a := &analyzer{prog: p, errs: &errs}

	// Pass 1: create units and record subroutine signatures so calls can be
	// checked regardless of declaration order.
	for _, au := range file.Units {
		u := &Unit{AST: au, Name: au.Name, locals: make(map[string]*Symbol), program: p}
		p.Units = append(p.Units, u)
		switch au.Kind {
		case ast.ProgramUnit:
			if p.Main != nil {
				errs.Add(au.Pos(), "duplicate program unit %q (already have %q)", au.Name, p.Main.Name)
			} else {
				p.Main = u
			}
		case ast.SubroutineUnit:
			if _, dup := p.subs[au.Name]; dup {
				errs.Add(au.Pos(), "duplicate subroutine %q", au.Name)
			}
			p.subs[au.Name] = u
		}
	}
	if p.Main == nil {
		errs.Add(source.NoPos, "no program unit found")
		return p, errs.Err()
	}

	// Pass 2: declarations (main first so globals exist for subroutines).
	a.declareUnit(p.Main, true)
	for _, u := range p.Units {
		if u != p.Main {
			a.declareUnit(u, false)
		}
	}

	// Pass 3: bodies.
	for _, u := range p.Units {
		a.checkBody(u)
	}
	return p, errs.Err()
}

type analyzer struct {
	prog *Program
	errs *source.ErrorList
}

func (a *analyzer) declareUnit(u *Unit, isMain bool) {
	table := u.locals
	if isMain {
		table = a.prog.globals
	}

	declare := func(s *Symbol) {
		if prev, dup := table[s.Name]; dup {
			a.errs.Add(s.Pos, "redeclaration of %q (previously declared as %s)", s.Name, prev.Kind)
			return
		}
		if a.prog.subs[s.Name] != nil {
			a.errs.Add(s.Pos, "%q conflicts with subroutine of the same name", s.Name)
			return
		}
		s.Global = isMain
		table[s.Name] = s
	}

	// Formal parameters: by-value scalars, implicitly typed unless a scalar
	// declaration in the unit retypes them.
	for _, pname := range u.AST.Params {
		s := &Symbol{Name: pname, Kind: ScalarSym, Type: ImplicitType(pname), IsParam: true, Pos: u.AST.Pos()}
		declare(s)
		u.Params = append(u.Params, s)
	}

	// Named constants, evaluated in order so later ones may use earlier ones.
	for _, pc := range u.AST.Consts {
		v, ok := a.evalConst(u, pc.Value)
		if !ok {
			a.errs.Add(pc.Pos(), "parameter %q must have a compile-time integer constant value", pc.Name)
		}
		declare(&Symbol{Name: pc.Name, Kind: ConstSym, Type: Integer, ConstVal: v, Pos: pc.Pos()})
	}

	// Explicit declarations.
	for _, d := range u.AST.Decls {
		for _, item := range d.Items {
			if len(item.Dims) == 0 {
				// Retyping a formal parameter is allowed.
				if prev, ok := table[item.Name]; ok && prev.IsParam {
					prev.Type = fromAST(d.Type)
					continue
				}
				declare(&Symbol{Name: item.Name, Kind: ScalarSym, Type: fromAST(d.Type), Pos: item.Pos()})
				continue
			}
			sym := &Symbol{Name: item.Name, Kind: ArraySym, Type: fromAST(d.Type), Pos: item.Pos()}
			for _, dim := range item.Dims {
				lo := int64(1)
				ok := true
				if dim.Lo != nil {
					lo, ok = a.evalConst(u, dim.Lo)
					if !ok {
						a.errs.Add(item.Pos(), "array %q: lower bound must be a compile-time constant", item.Name)
					}
				}
				hi, hok := a.evalConst(u, dim.Hi)
				if !hok {
					a.errs.Add(item.Pos(), "array %q: upper bound must be a compile-time constant", item.Name)
					hi = lo
				}
				if hi < lo {
					a.errs.Add(item.Pos(), "array %q: upper bound %d below lower bound %d", item.Name, hi, lo)
					hi = lo
				}
				sym.Dims = append(sym.Dims, DimBounds{Lo: lo, Hi: hi})
			}
			declare(sym)
		}
	}
}

// evalConst evaluates e as a compile-time integer constant, resolving
// parameter-constant names visible in u.
func (a *analyzer) evalConst(u *Unit, e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.Name:
		if s := u.Lookup(e.Ident); s != nil && s.Kind == ConstSym {
			return s.ConstVal, true
		}
		return 0, false
	case *ast.Unary:
		if e.Op == ast.Neg {
			v, ok := a.evalConst(u, e.X)
			return -v, ok
		}
		return 0, false
	case *ast.Binary:
		l, lok := a.evalConst(u, e.L)
		r, rok := a.evalConst(u, e.R)
		if !lok || !rok {
			return 0, false
		}
		switch e.Op {
		case ast.Add:
			return l + r, true
		case ast.Sub:
			return l - r, true
		case ast.Mul:
			return l * r, true
		case ast.Div:
			if r == 0 {
				return 0, false
			}
			return l / r, true
		}
		return 0, false
	default:
		return 0, false
	}
}

// EvalConst evaluates e as a compile-time integer constant in unit u.
// It is exported for use by later phases (e.g. IR lowering of bounds).
func (p *Program) EvalConst(u *Unit, e ast.Expr) (int64, bool) {
	a := &analyzer{prog: p, errs: &source.ErrorList{}}
	return a.evalConst(u, e)
}

// implicitScalar declares name implicitly in unit u and returns the symbol.
func (a *analyzer) implicitScalar(u *Unit, name string, pos source.Pos) *Symbol {
	s := &Symbol{Name: name, Kind: ScalarSym, Type: ImplicitType(name), Pos: pos}
	if u == a.prog.Main {
		s.Global = true
		a.prog.globals[name] = s
	} else {
		u.locals[name] = s
	}
	return s
}

// resolveScalar returns the scalar symbol for name, implicitly declaring
// it if necessary. Reports an error (and returns nil) if name resolves to
// a non-scalar.
func (a *analyzer) resolveScalar(u *Unit, name string, pos source.Pos) *Symbol {
	s := u.Lookup(name)
	if s == nil {
		if a.prog.subs[name] != nil {
			a.errs.Add(pos, "subroutine %q used as a variable", name)
			return nil
		}
		return a.implicitScalar(u, name, pos)
	}
	return s
}

func (a *analyzer) checkBody(u *Unit) {
	a.checkStmts(u, u.AST.Body)
}

func (a *analyzer) checkStmts(u *Unit, stmts []ast.Stmt) {
	for _, s := range stmts {
		a.checkStmt(u, s)
	}
}

func (a *analyzer) checkStmt(u *Unit, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		valT := a.checkExpr(u, s.Value)
		if len(s.Indexes) == 0 {
			sym := a.resolveScalar(u, s.Name, s.Pos())
			if sym == nil {
				return
			}
			switch sym.Kind {
			case ConstSym:
				a.errs.Add(s.Pos(), "cannot assign to constant %q", s.Name)
			case ArraySym:
				a.errs.Add(s.Pos(), "array %q assigned without subscripts", s.Name)
			case ScalarSym:
				a.requireNumeric(s.Value.Pos(), valT, "assigned value")
			}
			return
		}
		sym := u.Lookup(s.Name)
		if sym == nil || sym.Kind != ArraySym {
			a.errs.Add(s.Pos(), "%q is not a declared array", s.Name)
			return
		}
		if len(s.Indexes) != len(sym.Dims) {
			a.errs.Add(s.Pos(), "array %q has %d dimension(s), got %d subscript(s)", s.Name, len(sym.Dims), len(s.Indexes))
		}
		for _, ix := range s.Indexes {
			a.requireInteger(ix.Pos(), a.checkExpr(u, ix), "array subscript")
		}
		a.requireNumeric(s.Value.Pos(), valT, "assigned value")

	case *ast.IfStmt:
		a.requireLogical(s.Cond.Pos(), a.checkExpr(u, s.Cond), "if condition")
		a.checkStmts(u, s.Then)
		a.checkStmts(u, s.Else)

	case *ast.DoStmt:
		sym := a.resolveScalar(u, s.Var, s.Pos())
		if sym != nil {
			if sym.Kind != ScalarSym {
				a.errs.Add(s.Pos(), "do index %q is a %s, not a scalar", s.Var, sym.Kind)
			} else if sym.Type != Integer {
				a.errs.Add(s.Pos(), "do index %q must be integer", s.Var)
			}
		}
		a.requireInteger(s.Lo.Pos(), a.checkExpr(u, s.Lo), "do lower bound")
		a.requireInteger(s.Hi.Pos(), a.checkExpr(u, s.Hi), "do upper bound")
		if s.Step != nil {
			a.requireInteger(s.Step.Pos(), a.checkExpr(u, s.Step), "do step")
			if v, ok := a.evalConst(u, s.Step); ok && v == 0 {
				a.errs.Add(s.Step.Pos(), "do step must be nonzero")
			}
		}
		a.checkStmts(u, s.Body)

	case *ast.WhileStmt:
		a.requireLogical(s.Cond.Pos(), a.checkExpr(u, s.Cond), "while condition")
		a.checkStmts(u, s.Body)

	case *ast.CallStmt:
		callee := a.prog.subs[s.Name]
		if callee == nil {
			a.errs.Add(s.Pos(), "call to undefined subroutine %q", s.Name)
		} else if len(s.Args) != len(callee.AST.Params) {
			a.errs.Add(s.Pos(), "subroutine %q takes %d argument(s), got %d", s.Name, len(callee.AST.Params), len(s.Args))
		}
		for _, arg := range s.Args {
			a.requireNumeric(arg.Pos(), a.checkExpr(u, arg), "call argument")
		}

	case *ast.PrintStmt:
		for _, arg := range s.Args {
			a.requireNumeric(arg.Pos(), a.checkExpr(u, arg), "print argument")
		}

	case *ast.ReturnStmt:
		// nothing to check
	default:
		a.errs.Add(s.Pos(), "internal: unknown statement %T", s)
	}
}

func (a *analyzer) requireInteger(pos source.Pos, t Type, what string) {
	if t != Integer && t != Invalid {
		a.errs.Add(pos, "%s must be integer, got %s", what, t)
	}
}

func (a *analyzer) requireNumeric(pos source.Pos, t Type, what string) {
	if t != Integer && t != Real && t != Invalid {
		a.errs.Add(pos, "%s must be numeric, got %s", what, t)
	}
}

func (a *analyzer) requireLogical(pos source.Pos, t Type, what string) {
	if t != Logical && t != Invalid {
		a.errs.Add(pos, "%s must be logical, got %s", what, t)
	}
}

// checkExpr type-checks e in unit u and returns its type.
func (a *analyzer) checkExpr(u *Unit, e ast.Expr) Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return Integer
	case *ast.RealLit:
		return Real
	case *ast.Name:
		s := a.resolveScalar(u, e.Ident, e.Pos())
		if s == nil {
			return Invalid
		}
		if s.Kind == ArraySym {
			a.errs.Add(e.Pos(), "array %q used without subscripts", e.Ident)
			return Invalid
		}
		return s.Type
	case *ast.Index:
		return a.checkIndex(u, e)
	case *ast.Unary:
		t := a.checkExpr(u, e.X)
		if e.Op == ast.Not {
			a.requireLogical(e.Pos(), t, "operand of not")
			return Logical
		}
		a.requireNumeric(e.Pos(), t, "operand of unary minus")
		return t
	case *ast.Binary:
		lt := a.checkExpr(u, e.L)
		rt := a.checkExpr(u, e.R)
		switch {
		case e.Op.IsComparison():
			a.requireNumeric(e.L.Pos(), lt, "comparison operand")
			a.requireNumeric(e.R.Pos(), rt, "comparison operand")
			return Logical
		case e.Op.IsLogical():
			a.requireLogical(e.L.Pos(), lt, "logical operand")
			a.requireLogical(e.R.Pos(), rt, "logical operand")
			return Logical
		default:
			a.requireNumeric(e.L.Pos(), lt, "arithmetic operand")
			a.requireNumeric(e.R.Pos(), rt, "arithmetic operand")
			if lt == Real || rt == Real {
				return Real
			}
			return Integer
		}
	default:
		a.errs.Add(e.Pos(), "internal: unknown expression %T", e)
		return Invalid
	}
}

func (a *analyzer) checkIndex(u *Unit, e *ast.Index) Type {
	// Array reference?
	if s := u.Lookup(e.Name); s != nil {
		if s.Kind != ArraySym {
			a.errs.Add(e.Pos(), "%q is a %s, not an array or intrinsic", e.Name, s.Kind)
			return Invalid
		}
		if len(e.Args) != len(s.Dims) {
			a.errs.Add(e.Pos(), "array %q has %d dimension(s), got %d subscript(s)", e.Name, len(s.Dims), len(e.Args))
		}
		for _, ix := range e.Args {
			a.requireInteger(ix.Pos(), a.checkExpr(u, ix), "array subscript")
		}
		return s.Type
	}
	// Intrinsic?
	if in, ok := Intrinsics[e.Name]; ok {
		e.Intrinsic = true
		if len(e.Args) < in.MinArgs || (in.MaxArgs >= 0 && len(e.Args) > in.MaxArgs) {
			a.errs.Add(e.Pos(), "intrinsic %q: wrong number of arguments (%d)", e.Name, len(e.Args))
		}
		argT := Integer
		for _, arg := range e.Args {
			t := a.checkExpr(u, arg)
			a.requireNumeric(arg.Pos(), t, "intrinsic argument")
			if t == Real {
				argT = Real
			}
		}
		return in.Result(argT)
	}
	a.errs.Add(e.Pos(), "%q is not a declared array or known intrinsic", e.Name)
	return Invalid
}

// Intrinsic describes one intrinsic function.
type Intrinsic struct {
	MinArgs int
	MaxArgs int // -1 = unbounded
	// Result maps the promoted argument type to the result type.
	Result func(arg Type) Type
}

func sameAsArg(t Type) Type { return t }
func alwaysInt(Type) Type   { return Integer }
func alwaysReal(Type) Type  { return Real }

// Intrinsics is the table of MF intrinsic functions.
var Intrinsics = map[string]Intrinsic{
	"mod":   {2, 2, sameAsArg},
	"min":   {2, -1, sameAsArg},
	"max":   {2, -1, sameAsArg},
	"abs":   {1, 1, sameAsArg},
	"sqrt":  {1, 1, alwaysReal},
	"int":   {1, 1, alwaysInt},
	"float": {1, 1, alwaysReal},
}

// TypeOf computes the type of expression e in unit u after analysis. It
// assumes e has already been checked (unknown names are implicitly typed).
func (u *Unit) TypeOf(e ast.Expr) Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return Integer
	case *ast.RealLit:
		return Real
	case *ast.Name:
		if s := u.Lookup(e.Ident); s != nil {
			return s.Type
		}
		return ImplicitType(e.Ident)
	case *ast.Index:
		if s := u.Lookup(e.Name); s != nil {
			return s.Type
		}
		if in, ok := Intrinsics[e.Name]; ok {
			argT := Integer
			for _, arg := range e.Args {
				if u.TypeOf(arg) == Real {
					argT = Real
				}
			}
			return in.Result(argT)
		}
		return Invalid
	case *ast.Unary:
		if e.Op == ast.Not {
			return Logical
		}
		return u.TypeOf(e.X)
	case *ast.Binary:
		if e.Op.IsComparison() || e.Op.IsLogical() {
			return Logical
		}
		if u.TypeOf(e.L) == Real || u.TypeOf(e.R) == Real {
			return Real
		}
		return Integer
	}
	return Invalid
}

// Describe returns a one-line description of a symbol for diagnostics.
func (s *Symbol) Describe() string {
	switch s.Kind {
	case ArraySym:
		return fmt.Sprintf("%s array %s (%d dims)", s.Type, s.Name, len(s.Dims))
	case ConstSym:
		return fmt.Sprintf("parameter %s = %d", s.Name, s.ConstVal)
	default:
		return fmt.Sprintf("%s %s %s", s.Type, s.Kind, s.Name)
	}
}
