package sem

import (
	"strings"
	"testing"

	"nascent/internal/ast"
	"nascent/internal/parser"
)

func analyze(t *testing.T, src string) (*Program, error) {
	t.Helper()
	f, err := parser.Parse("test.mf", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return Analyze(f)
}

func mustAnalyze(t *testing.T, src string) *Program {
	t.Helper()
	p, err := analyze(t, src)
	if err != nil {
		t.Fatalf("analyze error: %v", err)
	}
	return p
}

func wantError(t *testing.T, src, frag string) {
	t.Helper()
	_, err := analyze(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not contain %q", err.Error(), frag)
	}
}

func TestImplicitTyping(t *testing.T) {
	for name, want := range map[string]Type{
		"i": Integer, "j": Integer, "n": Integer, "m": Integer,
		"a": Real, "h": Real, "o": Real, "x": Real, "z": Real,
	} {
		if got := ImplicitType(name); got != want {
			t.Errorf("ImplicitType(%q) = %s, want %s", name, got, want)
		}
	}
}

func TestGlobalsVisibleInSubroutines(t *testing.T) {
	p := mustAnalyze(t, `program p
  real shared(10)
  call f()
end
subroutine f()
  shared(1) = 1.0
end
`)
	sub := p.Subroutine("f")
	s := sub.Lookup("shared")
	if s == nil || s.Kind != ArraySym || !s.Global {
		t.Errorf("shared not resolved as global array: %+v", s)
	}
}

func TestLocalShadowsGlobal(t *testing.T) {
	p := mustAnalyze(t, `program p
  integer k
  call f()
end
subroutine f()
  real k
  k = 1.5
end
`)
	sub := p.Subroutine("f")
	s := sub.Lookup("k")
	if s == nil || s.Type != Real || s.Global {
		t.Errorf("local k should shadow global: %+v", s)
	}
	if g := p.Main.Lookup("k"); g == nil || g.Type != Integer {
		t.Errorf("global k wrong: %+v", g)
	}
}

func TestArrayBoundsEvaluated(t *testing.T) {
	p := mustAnalyze(t, `program p
  parameter n = 10
  real a(n), b(0:n-1), c(2:5, -3:3)
end
`)
	a := p.Main.Lookup("a")
	if a.Dims[0] != (DimBounds{1, 10}) {
		t.Errorf("a bounds = %+v", a.Dims[0])
	}
	b := p.Main.Lookup("b")
	if b.Dims[0] != (DimBounds{0, 9}) {
		t.Errorf("b bounds = %+v", b.Dims[0])
	}
	c := p.Main.Lookup("c")
	if len(c.Dims) != 2 || c.Dims[1] != (DimBounds{-3, 3}) {
		t.Errorf("c bounds = %+v", c.Dims)
	}
	if c.Len() != 4*7 {
		t.Errorf("c len = %d, want 28", c.Len())
	}
}

func TestParameterChain(t *testing.T) {
	p := mustAnalyze(t, `program p
  parameter n = 10
  parameter m = n * 2 + 1
  real a(m)
end
`)
	m := p.Main.Lookup("m")
	if m.ConstVal != 21 {
		t.Errorf("m = %d, want 21", m.ConstVal)
	}
	a := p.Main.Lookup("a")
	if a.Dims[0].Hi != 21 {
		t.Errorf("a hi bound = %d, want 21", a.Dims[0].Hi)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ name, src, frag string }{
		{"redecl", "program p\n integer x\n real x\nend\n", "redeclaration"},
		{"badBounds", "program p\n real a(10:5)\nend\n", "below lower bound"},
		{"symbolicBound", "program p\n integer n\n real a(n)\nend\n", "compile-time constant"},
		{"assignConst", "program p\n parameter n = 1\n n = 2\nend\n", "cannot assign to constant"},
		{"arrayNoSubs", "program p\n real a(5)\n a = 1.0\nend\n", "without subscripts"},
		{"scalarSubs", "program p\n integer x\n x(1) = 2\nend\n", "not a declared array"},
		{"wrongDims", "program p\n real a(5,5)\n a(1) = 2.0\nend\n", "dimension"},
		{"undefCall", "program p\n call nope()\nend\n", "undefined subroutine"},
		{"argCount", "program p\n call f(1)\nend\nsubroutine f(a, b)\nend\n", "takes 2 argument"},
		{"realSubscript", "program p\n real a(5)\n a(1.5) = 0.0\nend\n", "must be integer"},
		{"condNotLogical", "program p\n if (1 + 2) then\n endif\nend\n", "must be logical"},
		{"logicalOperand", "program p\n if ((1 < 2) and x) then\n endif\nend\n", "logical operand"},
		{"doRealIndex", "program p\n do x = 1, 5\n enddo\nend\n", "must be integer"},
		{"zeroStep", "program p\n do i = 1, 5, 0\n enddo\nend\n", "nonzero"},
		{"unknownIntrinsic", "program p\n x = frob(1)\nend\n", "not a declared array or known intrinsic"},
		{"modArity", "program p\n i = mod(5)\nend\n", "wrong number of arguments"},
		{"dupProgram", "program p\nend\nprogram q\nend\n", "duplicate program"},
		{"dupSubroutine", "program p\nend\nsubroutine f()\nend\nsubroutine f()\nend\n", "duplicate subroutine"},
		{"subAsVar", "program p\n x = f + 1.0\nend\nsubroutine f()\nend\n", "used as a variable"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { wantError(t, c.src, c.frag) })
	}
}

func TestIntrinsicsResolved(t *testing.T) {
	p := mustAnalyze(t, `program p
  i = mod(7, 3)
  j = max(1, 2, 3)
  x = sqrt(2.0)
  k = int(x)
  y = float(k)
  z = abs(-1.5)
end
`)
	u := p.Main
	for v, want := range map[string]Type{"i": Integer, "j": Integer, "x": Real, "k": Integer, "y": Real, "z": Real} {
		s := u.Lookup(v)
		if s == nil || s.Type != want {
			t.Errorf("%s: got %+v, want type %s", v, s, want)
		}
	}
}

func TestTypeOf(t *testing.T) {
	p := mustAnalyze(t, `program p
  integer i, j
  real x
  real a(10)
  x = a(i) + float(j)
  if (i < j and x > 0.0) then
  endif
end
`)
	u := p.Main
	cases := []struct {
		src  string
		want Type
	}{
		{"a(i)", Real},
		{"i + j", Integer},
		{"i + x", Real},
		{"i < j", Logical},
		{"mod(i, j)", Integer},
		{"-i", Integer},
		{"not (i < j)", Logical},
	}
	for _, c := range cases {
		ff, err := parser.Parse("e.mf", "program q\n  zz = "+c.src+"\nend\n")
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		expr := ff.Units[0].Body[0].(*ast.AssignStmt).Value
		if got := u.TypeOf(expr); got != c.want {
			t.Errorf("TypeOf(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestImplicitDeclarationCreatesSymbols(t *testing.T) {
	p := mustAnalyze(t, `program p
  total = 0.0
  count = 1
end
`)
	tot := p.Main.Lookup("total")
	if tot == nil || tot.Type != Real {
		t.Errorf("total: %+v", tot)
	}
	cnt := p.Main.Lookup("count")
	if cnt == nil || cnt.Type != Real { // 'c' is outside i–n
		t.Errorf("count: %+v", cnt)
	}
}

func TestParamRetyping(t *testing.T) {
	p := mustAnalyze(t, `program p
  call f(1.0)
end
subroutine f(alpha)
  integer alpha
  alpha = 2
end
`)
	sub := p.Subroutine("f")
	s := sub.Lookup("alpha")
	if s == nil || !s.IsParam || s.Type != Integer {
		t.Errorf("alpha: %+v", s)
	}
}
