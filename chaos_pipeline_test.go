package nascent_test

// Pipeline-wide fault-injection tests: every chaos site is driven at
// rate 1 through the public API and must produce its contracted
// outcome — an amplified typed error, a contained panic, a per-function
// degradation, or a typed resource abort. Chaos-off inertness is pinned
// at the end of the file.

import (
	"errors"
	"strings"
	"testing"

	"nascent"
	"nascent/internal/chaos"
)

// chaosSrc executes ~100k instructions so the engines reach their poll
// points (poll cadence is coarser than short programs ever run).
const chaosSrc = `program chaosprobe
  integer a(1:100)
  integer i
  integer j
  do j = 1, 200
    do i = 1, 100
      a(i) = a(i) + j
    enddo
  enddo
  print a(1)
  print a(100)
end
`

const chaosWant = "20100\n20100\n"

func withChaos(t *testing.T, spec chaos.Spec) {
	t.Helper()
	chaos.Enable(spec)
	t.Cleanup(chaos.Disable)
}

func all(site chaos.Site) chaos.Spec { return chaos.Spec{Seed: 1, Rate: 1, Site: site} }

// TestChaosFrontendErrors drives the three error-amplification sites:
// each must surface as an ordinary compile error carrying the injected
// marker, never a panic or a silent success.
func TestChaosFrontendErrors(t *testing.T) {
	for _, site := range []chaos.Site{chaos.SiteLexError, chaos.SiteParseError, chaos.SiteSemError} {
		t.Run(string(site), func(t *testing.T) {
			withChaos(t, all(site))
			_, err := nascent.Compile(chaosSrc, nascent.Options{BoundsChecks: true})
			if err == nil {
				t.Fatalf("%s injected but compile succeeded", site)
			}
			if !chaos.InjectedMessage(err) {
				t.Errorf("error lost the injection marker: %v", err)
			}
			if !strings.Contains(err.Error(), "replay: -chaos") {
				t.Errorf("error lost the replay spec: %v", err)
			}
		})
	}
}

// TestChaosLowerPanicContained checks an irbuild panic is contained by
// the stage guard as a typed InternalError tagged "lower".
func TestChaosLowerPanicContained(t *testing.T) {
	withChaos(t, all(chaos.SiteLowerPanic))
	_, err := nascent.Compile(chaosSrc, nascent.Options{BoundsChecks: true})
	var ie *nascent.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *InternalError", err)
	}
	if ie.Stage != "lower" {
		t.Errorf("Stage = %q, want lower", ie.Stage)
	}
	if !errors.Is(err, nascent.ErrInternal) {
		t.Error("InternalError must match ErrInternal")
	}
}

// TestChaosOptimizerDegrades drives both optimizer faults — an induced
// panic and a malformed-IR mutation the verifier must catch — and
// checks each degrades that function to its naive body: the compile
// succeeds with a diagnostic, and the program still runs correctly
// (with naive's check count, since nothing was optimized).
func TestChaosOptimizerDegrades(t *testing.T) {
	naiveProg, err := nascent.Compile(chaosSrc, nascent.Options{BoundsChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := naiveProg.Run()
	if err != nil {
		t.Fatal(err)
	}

	for _, site := range []chaos.Site{chaos.SiteOptPanic, chaos.SiteOptMalformed} {
		t.Run(string(site), func(t *testing.T) {
			withChaos(t, all(site))
			prog, err := nascent.Compile(chaosSrc, nascent.Options{BoundsChecks: true, Scheme: nascent.LLS})
			if err != nil {
				t.Fatalf("optimizer fault must degrade, not fail the compile: %v", err)
			}
			if prog.Opt == nil || len(prog.Opt.Diagnostics) == 0 {
				t.Error("degradation left no diagnostic")
			}
			res, err := prog.Run()
			if err != nil {
				t.Fatalf("degraded program failed to run: %v", err)
			}
			if res.Output != chaosWant {
				t.Errorf("degraded output = %q, want %q", res.Output, chaosWant)
			}
			if res.Checks != naive.Checks {
				t.Errorf("degraded checks = %d, want naive's %d", res.Checks, naive.Checks)
			}
		})
	}
}

// TestChaosPollBudgetAndCancel drives the spurious budget-exhaustion
// and delayed-cancellation sites of both engines: each must abort with
// a typed ResourceError.
func TestChaosPollBudgetAndCancel(t *testing.T) {
	cases := []struct {
		site   chaos.Site
		engine nascent.Engine
	}{
		{chaos.SiteTreeBudget, nascent.EngineTree},
		{chaos.SiteTreeCancel, nascent.EngineTree},
		{chaos.SiteVMBudget, nascent.EngineVM},
		{chaos.SiteVMCancel, nascent.EngineVM},
	}
	for _, c := range cases {
		t.Run(string(c.site), func(t *testing.T) {
			withChaos(t, all(c.site))
			prog, err := nascent.Compile(chaosSrc, nascent.Options{BoundsChecks: true})
			if err != nil {
				t.Fatal(err)
			}
			_, err = prog.RunWith(nascent.RunConfig{Engine: c.engine})
			if !errors.Is(err, nascent.ErrResourceExhausted) {
				t.Fatalf("err = %v, want ErrResourceExhausted", err)
			}
		})
	}
}

// TestChaosPollPanicContained checks an injected mid-run panic in
// EITHER engine is contained as an InternalError tagged "run" — the VM
// must use the same stage tag as the tree-walker, so downstream
// consumers (oracle taxonomy, exit codes) treat both identically.
func TestChaosPollPanicContained(t *testing.T) {
	cases := []struct {
		site   chaos.Site
		engine nascent.Engine
	}{
		{chaos.SiteTreePanic, nascent.EngineTree},
		{chaos.SiteVMPanic, nascent.EngineVM},
	}
	for _, c := range cases {
		t.Run(string(c.site), func(t *testing.T) {
			withChaos(t, all(c.site))
			prog, err := nascent.Compile(chaosSrc, nascent.Options{BoundsChecks: true})
			if err != nil {
				t.Fatal(err)
			}
			_, err = prog.RunWith(nascent.RunConfig{Engine: c.engine})
			var ie *nascent.InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("err = %v, want *InternalError", err)
			}
			if ie.Stage != "run" {
				t.Errorf("Stage = %q, want run (tree and VM must share the containment tag)", ie.Stage)
			}
		})
	}
}

// TestChaosOffPipelineClean pins inertness: with the registry disabled
// the probe compiles, optimizes, and runs identically under both
// engines — no chaos residue survives a Disable.
func TestChaosOffPipelineClean(t *testing.T) {
	chaos.Disable()
	for _, engine := range []nascent.Engine{nascent.EngineTree, nascent.EngineVM} {
		prog, err := nascent.Compile(chaosSrc, nascent.Options{BoundsChecks: true, Scheme: nascent.LLS})
		if err != nil {
			t.Fatal(err)
		}
		if len(prog.Opt.Diagnostics) != 0 {
			t.Errorf("chaos-off compile produced diagnostics: %v", prog.Opt.Diagnostics)
		}
		res, err := prog.RunWith(nascent.RunConfig{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != chaosWant {
			t.Errorf("%v output = %q, want %q", engine, res.Output, chaosWant)
		}
	}
}
