package nascent_test

import (
	"math/rand"
	"testing"

	"nascent"
)

// TestPipelineNeverPanics mutates valid programs and pushes whatever
// still compiles through every stage — parse, analyze, lower, optimize,
// execute — asserting the toolchain returns errors instead of panicking.
func TestPipelineNeverPanics(t *testing.T) {
	base := `program p
  parameter n = 8
  integer i, j, m
  real a(n), b(0:n)
  m = 3
  do i = 1, n
    a(i) = float(i)
  enddo
  j = 1
  while (j < m)
    b(j) = a(j) + a(min(j + 1, n))
    j = j + 1
  endwhile
  if (m > 2) then
    call f(m)
  endif
  print a(1), b(1)
end
subroutine f(k)
  m = k * 2
end
`
	r := rand.New(rand.NewSource(99))
	compiled, ran := 0, 0
	for trial := 0; trial < 1500; trial++ {
		b := []byte(base)
		for e := 0; e < 1+r.Intn(6); e++ {
			switch r.Intn(3) {
			case 0:
				if len(b) > 1 {
					i := r.Intn(len(b))
					b = append(b[:i], b[i+1:]...)
				}
			case 1:
				i := r.Intn(len(b))
				b = append(b[:i], append([]byte{b[r.Intn(len(b))]}, b[i:]...)...)
			case 2:
				b[r.Intn(len(b))] = byte(32 + r.Intn(95))
			}
		}
		src := string(b)
		for _, sch := range []nascent.Scheme{nascent.Naive, nascent.SE, nascent.LLS} {
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						t.Fatalf("panic compiling mutated source (scheme %v): %v\n%s", sch, rec, src)
					}
				}()
				p, err := nascent.Compile(src, nascent.Options{BoundsChecks: true, Scheme: sch})
				if err != nil {
					return
				}
				compiled++
				if _, err := p.RunWith(nascent.RunConfig{MaxInstructions: 200000}); err == nil {
					ran++
				}
			}()
		}
	}
	if compiled == 0 {
		t.Error("no mutated program compiled: mutation too destructive to exercise the back end")
	}
	t.Logf("mutants compiled: %d, ran: %d", compiled, ran)
}
