package nascent_test

import (
	"math/rand"
	"testing"

	"nascent"
	"nascent/internal/ir"
	"nascent/internal/oracle"
	"nascent/internal/suite"
)

// TestOracleSuitePrograms runs the differential oracle over every
// benchmark program in the paper's Table 1 suite: each program is
// compiled naive and under all twenty optimizer variants, executed
// under ALL THREE execution engines, and checked against the soundness
// contract plus the engine-identity invariant (tree, VM, and the
// superinstruction-optimized VM must produce byte-identical Results
// for every variant).
func TestOracleSuitePrograms(t *testing.T) {
	for _, p := range suite.Programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := oracle.Verify(p.Source, oracle.Config{
				Engines: []nascent.Engine{nascent.EngineTree, nascent.EngineVM, nascent.EngineVMOpt},
			})
			if err != nil {
				t.Fatalf("baseline failed: %v", err)
			}
			if !rep.OK() {
				t.Fatalf("%s", rep.Summary())
			}
		})
	}
}

// oracleSrc is the subject program for miscompilation-injection tests:
// small, deterministic, with enough checked accesses that naive executes
// a measurable number of dynamic checks.
const oracleSrc = `program p
  integer i
  real a(10), b(10)
  do i = 1, 10
    a(i) = float(i)
  enddo
  do i = 1, 10
    b(i) = a(i) * 2.0
  enddo
  print a(10), b(1)
end
`

// TestOracleCatchesMiscompiles injects a deliberate miscompilation into
// the optimized program (via Config.Mutate) and asserts the oracle
// reports a structured Divergence of the expected invariant class.
// This is the oracle's own soundness test: a checker that cannot detect
// a planted bug proves nothing when it reports success.
func TestOracleCatchesMiscompiles(t *testing.T) {
	one := []oracle.Variant{{Scheme: nascent.LLS}}
	cases := []struct {
		name     string
		variants []oracle.Variant
		mutate   func(p *nascent.Program)
		want     oracle.Invariant
	}{
		{
			name: "extra-output",
			mutate: func(p *nascent.Program) {
				e := p.IR.Main().Entry()
				e.Stmts = append(e.Stmts, &ir.PrintStmt{Args: []ir.Expr{&ir.ConstInt{V: 42}}})
			},
			want: oracle.InvOutput,
		},
		{
			name: "spurious-trap",
			mutate: func(p *nascent.Program) {
				e := p.IR.Main().Entry()
				e.Stmts = append([]ir.Stmt{&ir.TrapStmt{Note: "injected"}}, e.Stmts...)
			},
			want: oracle.InvTrap,
		},
		{
			name: "check-explosion",
			mutate: func(p *nascent.Program) {
				// Empty-term checks always pass (0 <= 0) but each one
				// executed counts against the dynamic check budget.
				e := p.IR.Main().Entry()
				for i := 0; i < 100; i++ {
					e.Stmts = append(e.Stmts, &ir.CheckStmt{Note: "injected"})
				}
			},
			want: oracle.InvChecks,
		},
		{
			name:   "report-tamper",
			mutate: func(p *nascent.Program) { p.Opt.ChecksAfter++ },
			want:   oracle.InvReport,
		},
		{
			name: "crash-run",
			mutate: func(p *nascent.Program) {
				e := p.IR.Main().Entry()
				e.Stmts = append(e.Stmts, &ir.PrintStmt{Args: []ir.Expr{
					&ir.Bin{Op: ir.OpDiv, L: &ir.ConstInt{V: 1}, R: &ir.ConstInt{V: 0}, Typ: ir.Int},
				}})
			},
			want: oracle.InvRun,
		},
		{
			name:     "bad-scheme",
			variants: []oracle.Variant{{Scheme: nascent.Scheme(99)}},
			want:     oracle.InvCompile,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := oracle.Config{Variants: tc.variants}
			if cfg.Variants == nil {
				cfg.Variants = one
			}
			if tc.mutate != nil {
				cfg.Mutate = func(_ oracle.Variant, p *nascent.Program) { tc.mutate(p) }
			}
			rep, err := oracle.Verify(oracleSrc, cfg)
			if err != nil {
				t.Fatalf("baseline failed: %v", err)
			}
			if rep.OK() {
				t.Fatalf("oracle missed the injected %s miscompilation", tc.want)
			}
			found := false
			for _, d := range rep.Divergences {
				if d.Invariant == tc.want {
					found = true
					if d.Detail == "" {
						t.Error("divergence has empty Detail")
					}
					if d.NaiveIR == "" {
						t.Error("divergence has empty NaiveIR dump")
					}
				}
			}
			if !found {
				t.Fatalf("want a %s divergence, got:\n%s", tc.want, rep.Summary())
			}
		})
	}
}

// TestPipelineNeverPanics mutates valid programs and pushes whatever
// still compiles through every stage — parse, analyze, lower, optimize,
// execute — asserting the toolchain returns errors instead of panicking.
// Every surviving mutant additionally goes through the differential
// oracle: the optimizer must stay sound on every valid program, not
// just on hand-picked ones.
func TestPipelineNeverPanics(t *testing.T) {
	base := `program p
  parameter n = 8
  integer i, j, m
  real a(n), b(0:n)
  m = 3
  do i = 1, n
    a(i) = float(i)
  enddo
  j = 1
  while (j < m)
    b(j) = a(j) + a(min(j + 1, n))
    j = j + 1
  endwhile
  if (m > 2) then
    call f(m)
  endif
  print a(1), b(1)
end
subroutine f(k)
  m = k * 2
end
`
	// The sampled oracle runs use a small variant set so the whole test
	// stays well under the tier-1 time budget.
	oracleVariants := []oracle.Variant{
		{Scheme: nascent.SE},
		{Scheme: nascent.LLS, Kind: nascent.INX},
		{Scheme: nascent.MCM},
	}
	r := rand.New(rand.NewSource(99))
	compiled, ran, verified := 0, 0, 0
	trials := 6000
	if testing.Short() {
		trials = 300
	}
	for trial := 0; trial < trials; trial++ {
		b := []byte(base)
		for e := 0; e < 1+r.Intn(6); e++ {
			switch r.Intn(3) {
			case 0:
				if len(b) > 1 {
					i := r.Intn(len(b))
					b = append(b[:i], b[i+1:]...)
				}
			case 1:
				i := r.Intn(len(b))
				b = append(b[:i], append([]byte{b[r.Intn(len(b))]}, b[i:]...)...)
			case 2:
				b[r.Intn(len(b))] = byte(32 + r.Intn(95))
			}
		}
		src := string(b)
		for _, sch := range []nascent.Scheme{nascent.Naive, nascent.SE, nascent.LLS} {
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						t.Fatalf("panic compiling mutated source (scheme %v): %v\n%s", sch, rec, src)
					}
				}()
				p, err := nascent.Compile(src, nascent.Options{BoundsChecks: true, Scheme: sch})
				if err != nil {
					return
				}
				compiled++
				if _, err := p.RunWith(nascent.RunConfig{MaxInstructions: 200000}); err == nil {
					ran++
				}
				// Every surviving mutant goes through the oracle (once per
				// source: the naive compile attempt is the dedup point).
				if sch == nascent.Naive {
					rep, err := oracle.Verify(src, oracle.Config{
						Variants: oracleVariants,
						Run:      nascent.RunConfig{MaxInstructions: 200000},
					})
					if err != nil {
						return // baseline exceeded its budget: nothing to compare
					}
					verified++
					if !rep.OK() {
						t.Fatalf("oracle divergence on mutated source:\n%s\n%s", rep.Summary(), src)
					}
				}
			}()
		}
	}
	if compiled == 0 {
		t.Error("no mutated program compiled: mutation too destructive to exercise the back end")
	}
	if verified == 0 {
		t.Error("no mutant reached the oracle: sampling threshold too high")
	}
	t.Logf("mutants compiled: %d, ran: %d, oracle-verified: %d", compiled, ran, verified)
}
