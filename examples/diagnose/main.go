// Diagnose: the optimizer's step 5 (paper §3) evaluates compile-time
// checks; violations are reported at compile time and replaced by TRAP
// instructions — the reliability story of compiler-inserted checking.
//
//	go run ./examples/diagnose
package main

import (
	"fmt"
	"log"

	"nascent"
)

const src = `program buggy
  parameter n = 10
  real a(n), b(2:n)
  integer i

  a(0) = 1.0          ! compile-time violation: 0 < lower bound 1
  b(1) = 2.0          ! compile-time violation: 1 < lower bound 2
  a(n) = 3.0          ! fine
  a(n + 1) = 4.0      ! compile-time violation: n+1 > upper bound 10

  do i = 1, n
    a(i) = float(i)   ! fine: eliminated entirely by the optimizer
  enddo
  print a(1)
end
`

func main() {
	fmt.Println("Compile-time range diagnostics (optimizer step 5)")
	fmt.Println()
	prog, err := nascent.Compile(src, nascent.Options{BoundsChecks: true, Scheme: nascent.LLS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diagnostics (%d):\n", len(prog.Opt.Diagnostics))
	for _, d := range prog.Opt.Diagnostics {
		fmt.Printf("  %s\n", d)
	}
	fmt.Println()
	fmt.Printf("traps inserted: %d, checks eliminated at compile time: %d\n",
		prog.Opt.TrapsInserted, prog.Opt.EliminatedConst)

	res, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: trapped=%v (%s)\n", res.Trapped, res.TrapNote)
	fmt.Println()
	fmt.Println("The violations are caught before the program ever runs; the")
	fmt.Println("in-range loop accesses cost zero dynamic checks under LLS.")
}
