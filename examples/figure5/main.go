// Figure 5 of the paper: a program where safe-earliest placement is not
// always profitable. SE hoists check (i <= 10) above the branch; on the
// else path the stronger check (i <= 6) must still execute, so that path
// now performs two checks where the original performed one.
//
//	go run ./examples/figure5
package main

import (
	"fmt"
	"log"

	"nascent"
)

// The paper's fragment, parameterized so either branch can be driven.
func src(takeElse int) string {
	return fmt.Sprintf(`program figure5
  integer a(1:10)
  integer i, n
  n = %d
  i = 2
  if (n > 0) then
    a(i) = 1
  else
    a(i + 4) = 2
  endif
end
`, takeElse)
}

func measure(scheme nascent.Scheme, takeElse int) uint64 {
	prog, err := nascent.Compile(src(takeElse), nascent.Options{BoundsChecks: true, Scheme: scheme})
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res.Checks
}

func main() {
	fmt.Println("Paper Figure 5: safe-earliest placement can lose on some paths")
	fmt.Println()
	fmt.Printf("%-28s %12s %12s\n", "scheme", "then-path", "else-path")
	for _, cfg := range []struct {
		label  string
		scheme nascent.Scheme
	}{
		{"no insertion (NI)", nascent.NI},
		{"safe-earliest (SE)", nascent.SE},
		{"latest-not-isolated (LNI)", nascent.LNI},
	} {
		thenChecks := measure(cfg.scheme, 1)
		elseChecks := measure(cfg.scheme, 0)
		fmt.Printf("%-28s %12d %12d\n", cfg.label, thenChecks, elseChecks)
	}
	fmt.Println()
	fmt.Println("SE pays extra checks (the paper's profitability anomaly: hoisting")
	fmt.Println("the weaker merged check cannot cover the stronger per-arm checks);")
	fmt.Println("the latest placement avoids it by staying in the arms.")
}
