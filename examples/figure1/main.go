// Figure 1 of the paper: a two-statement fragment whose four naive range
// checks reduce to three by redundancy elimination (Figure 1b) and to two
// by check strengthening (Figure 1c).
//
//	go run ./examples/figure1
package main

import (
	"fmt"
	"log"
	"strings"

	"nascent"
)

// The paper's fragment: integer A[5..10]; A[2*N] = 0; A[2*N-1] = 1.
const src = `program figure1
  integer a(5:10)
  integer n
  n = 3
  a(2*n) = 0
  a(2*n - 1) = 1
end
`

func main() {
	fmt.Println("Paper Figure 1: elimination of redundant range checks")
	fmt.Println()
	for _, cfg := range []struct {
		label  string
		scheme nascent.Scheme
		note   string
	}{
		{"(a) naive", nascent.Naive, "4 checks: C1..C4"},
		{"(b) availability elimination (NI)", nascent.NI, "C4 eliminated: C2 (2n<=10) implies C4 (2n<=11)"},
		{"(c) check strengthening (CS)", nascent.CS, "C1 replaced by stronger C3; C3 eliminated"},
	} {
		prog, err := nascent.Compile(src, nascent.Options{BoundsChecks: true, Scheme: cfg.scheme})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s — %s\n", cfg.label, cfg.note)
		printChecks(prog)
		fmt.Println()
	}
}

func printChecks(p *nascent.Program) {
	n := 0
	for _, line := range strings.Split(p.Dump(), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "check") || strings.HasPrefix(trimmed, "condcheck") {
			n++
			fmt.Printf("  %s\n", trimmed)
		}
	}
	fmt.Printf("  => %d checks\n", n)
}
