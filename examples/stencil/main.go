// Stencil: a realistic 2-D heat-diffusion kernel showing what the range
// check optimizer buys on the kind of code the paper's intro motivates —
// safety-checked numerical Fortran. Prints a per-scheme table of dynamic
// instruction and check counts.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"nascent"
)

const src = `program heat
  parameter nx = 64
  parameter ny = 64
  parameter nsteps = 10
  real u(nx, ny), un(nx, ny)
  real alpha, usum
  integer i, j, istep

  do j = 1, ny
    do i = 1, nx
      u(i, j) = 0.0
    enddo
  enddo
  u(nx/2, ny/2) = 100.0
  alpha = 0.1

  do istep = 1, nsteps
    do j = 2, ny - 1
      do i = 2, nx - 1
        un(i, j) = u(i, j) + alpha * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1) - 4.0 * u(i, j))
      enddo
    enddo
    do j = 2, ny - 1
      do i = 2, nx - 1
        u(i, j) = un(i, j)
      enddo
    enddo
  enddo

  usum = 0.0
  do j = 1, ny
    do i = 1, nx
      usum = usum + u(i, j)
    enddo
  enddo
  print usum
end
`

func main() {
	fmt.Println("2-D heat diffusion, 64x64, 10 steps — range check overhead per scheme")
	fmt.Println()

	base, err := nascent.Compile(src, nascent.Options{})
	if err != nil {
		log.Fatal(err)
	}
	resBase, err := base.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %12s %10s %10s %s\n", "scheme", "instructions", "checks", "overhead", "output")
	fmt.Printf("%-10s %12d %10d %9s%% %s", "unchecked", resBase.Instructions, 0, "0.0", resBase.Output)

	schemes := append([]nascent.Scheme{nascent.Naive}, nascent.OptimizedSchemes...)
	for _, sch := range schemes {
		prog, err := nascent.Compile(src, nascent.Options{BoundsChecks: true, Scheme: sch})
		if err != nil {
			log.Fatalf("%v: %v", sch, err)
		}
		res, err := prog.Run()
		if err != nil {
			log.Fatalf("%v: %v", sch, err)
		}
		// The paper estimates >= 2 instructions per executed check.
		overhead := 100 * float64(2*res.Checks) / float64(res.Instructions)
		fmt.Printf("%-10s %12d %10d %9.1f%% %s", sch, res.Instructions, res.Checks, overhead, res.Output)
	}
	fmt.Println()
	fmt.Println("LLS removes every check: the stencil's subscripts are linear with")
	fmt.Println("constant bounds, so all hoisted checks constant-fold away.")
}
