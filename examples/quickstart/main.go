// Quickstart: compile an MF program, run it unoptimized and with the
// paper's best scheme (LLS), and compare dynamic range check counts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nascent"
)

const src = `program saxpy
  parameter n = 1000
  real x(n), y(n)
  real a
  integer i
  a = 2.5
  do i = 1, n
    x(i) = float(i) * 0.001
    y(i) = 1.0 - float(i) * 0.001
  enddo
  do i = 1, n
    y(i) = y(i) + a * x(i)
  enddo
  print y(1), y(n)
end
`

func main() {
	fmt.Println("Nascent-Go quickstart: SAXPY with array subscript range checks")
	fmt.Println()

	for _, cfg := range []struct {
		label string
		opts  nascent.Options
	}{
		{"unchecked          ", nascent.Options{}},
		{"naive checks       ", nascent.Options{BoundsChecks: true}},
		{"optimized (NI)     ", nascent.Options{BoundsChecks: true, Scheme: nascent.NI}},
		{"optimized (LLS)    ", nascent.Options{BoundsChecks: true, Scheme: nascent.LLS}},
	} {
		prog, err := nascent.Compile(src, cfg.opts)
		if err != nil {
			log.Fatalf("%s: %v", cfg.label, err)
		}
		res, err := prog.Run()
		if err != nil {
			log.Fatalf("%s: %v", cfg.label, err)
		}
		fmt.Printf("%s instructions=%7d  checks=%6d  output=%q\n",
			cfg.label, res.Instructions, res.Checks, res.Output)
	}

	fmt.Println()
	fmt.Println("LLS hoists every check out of the loops and constant-folds them")
	fmt.Println("against the declared bounds: zero dynamic checks remain.")
}
