// Figure 2 of the paper: induction variable analysis in Nascent. The
// loop assigns basic variable h; j=j+1 and k=k+m classify as linear
// (with m=5 constant-propagated, k's induction expression is 5h+8),
// 2*m+1 is invariant, and the trip count is n.
//
//	go run ./examples/induction
package main

import (
	"fmt"
	"log"

	"nascent/internal/dom"
	"nascent/internal/induction"
	"nascent/internal/ir"
	"nascent/internal/irbuild"
	"nascent/internal/loops"
	"nascent/internal/parser"
	"nascent/internal/sem"
	"nascent/internal/ssa"
)

const src = `program figure2
  integer i, j, k, m, n
  integer a(1:100)
  j = 0
  k = 3
  m = 5
  do i = 0, n - 1
    j = j + 1
    k = k + m
    a(k) = 2*m + 1
  enddo
end
`

func main() {
	file, err := parser.Parse("figure2.mf", src)
	if err != nil {
		log.Fatal(err)
	}
	semProg, err := sem.Analyze(file)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := irbuild.Build(semProg, irbuild.Options{})
	if err != nil {
		log.Fatal(err)
	}

	f := prog.Main()
	f.SplitCriticalEdges()
	tree := dom.Compute(f)
	forest := loops.Analyze(f, tree)
	tree = dom.Compute(f)
	info := ssa.Build(f, tree)
	ind := induction.Analyze(f, forest, info)
	loop := forest.Loops[0]

	fmt.Println("Paper Figure 2: induction variable analysis")
	fmt.Println()
	fmt.Printf("%-18s %-12s %s\n", "program expression", "class", "induction expression (h = basic loop variable)")

	show := func(label string, e ir.Expr) {
		ie := ind.IEOfExpr(e, loop)
		fmt.Printf("%-18s %-12s %s\n", label, ie.Class, ie.Form)
	}

	// Walk the loop body: report the IE of every assignment source and
	// store subscript/value.
	for _, b := range loop.SortedBlocks() {
		for _, s := range b.Stmts {
			switch s := s.(type) {
			case *ir.AssignStmt:
				show(s.Dst.Name+" = "+ir.ExprString(s.Src), s.Src)
			case *ir.StoreStmt:
				show("subscript "+ir.ExprString(s.Idx[0]), s.Idx[0])
				show("value "+ir.ExprString(s.Val), s.Val)
			}
		}
	}

	trip, ok := ind.TripCount(loop)
	fmt.Println()
	if ok {
		fmt.Printf("trip count: max(0, %s)   (paper: max(0,n))\n", trip)
	} else {
		fmt.Println("trip count unavailable")
	}
}
