// Figure 6 of the paper: preheader insertion with loop-limit
// substitution. The loop-invariant check on k and the linear check on j
// (substituted at the loop limit 2*n) are hoisted into the preheader as
// cond-checks guarded by the loop-entry condition (1 <= 2*n).
//
//	go run ./examples/preheader
package main

import (
	"fmt"
	"log"
	"strings"

	"nascent"
)

const src = `program figure6
  integer a(1:10)
  integer j, k, n, nn, kk
  nn = 4
  kk = 3
  call init()
  do j = 1, 2*n
    a(k) = a(k) + 1
    a(j) = 2
  enddo
  print a(3), a(8)
end
subroutine init()
  n = nn
  k = kk
end
`

func main() {
	fmt.Println("Paper Figure 6: preheader insertion with loop-limit substitution")
	fmt.Println()

	for _, cfg := range []struct {
		label  string
		scheme nascent.Scheme
	}{
		{"(a) naive: 6 checks per iteration", nascent.Naive},
		{"(b)+(c) LLS: cond-checks in the preheader, loop body check-free", nascent.LLS},
	} {
		prog, err := nascent.Compile(src, nascent.Options{BoundsChecks: true, Scheme: cfg.scheme})
		if err != nil {
			log.Fatal(err)
		}
		res, err := prog.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s\n", cfg.label)
		for _, line := range strings.Split(prog.Dump(), "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "check") || strings.HasPrefix(trimmed, "condcheck") {
				fmt.Printf("  %s\n", trimmed)
			}
		}
		fmt.Printf("  dynamic checks executed: %d\n\n", res.Checks)
	}
	fmt.Println("The hoisted form matches the paper:")
	fmt.Println("  Cond-check ((1 <= 2*n), k <= 10)   and   Cond-check ((1 <= 2*n), 2*n <= 10)")
}
