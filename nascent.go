// Package nascent is the public API of Nascent-Go, a reproduction of
// Kolte & Wolfe, "Elimination of Redundant Array Subscript Range Checks"
// (PLDI 1995).
//
// It compiles MF (mini-Fortran) programs to a CFG IR, optionally inserts
// naive subscript range checks, optimizes them with the paper's
// PRE-based algorithm under a selectable placement scheme, and executes
// the result while counting dynamic instructions and range checks:
//
//	prog, err := nascent.Compile(src, nascent.Options{
//	    BoundsChecks: true,
//	    Scheme:       nascent.LLS,
//	    Kind:         nascent.PRX,
//	})
//	res, err := prog.Run()
//	fmt.Println(res.Instructions, res.Checks)
package nascent

import (
	"fmt"
	"runtime/debug"
	"time"

	"nascent/internal/ast"
	"nascent/internal/core"
	"nascent/internal/guard"
	"nascent/internal/interp"
	"nascent/internal/ir"
	"nascent/internal/irbuild"
	"nascent/internal/parser"
	"nascent/internal/rangecheck"
	"nascent/internal/sem"

	// Link the bytecode VM and the tiering controller so
	// RunConfig{Engine: EngineVM} (and vmopt/vmjit/tiered) is available
	// to every importer of the public API.
	_ "nascent/internal/vm"
	_ "nascent/internal/vm/tier"
)

// InternalError is a recovered internal invariant violation, tagged with
// the pipeline stage ("parse", "analyze", "lower", "optimize", "run")
// and the function being processed when known. Compile and Run never
// propagate panics: any internal panic surfaces as one of these, so no
// input can crash an embedding process. Match the class with
// errors.Is(err, ErrInternal).
type InternalError = guard.InternalError

// ErrInternal is the sentinel matched by every InternalError.
var ErrInternal = guard.ErrInternal

// ResourceError reports an exhausted execution budget (instructions,
// array cells, deadline, or context cancellation). Match the class with
// errors.Is(err, ErrResourceExhausted).
type ResourceError = interp.ResourceError

// ErrResourceExhausted is the sentinel matched by every ResourceError.
var ErrResourceExhausted = interp.ErrResourceExhausted

// TrapClass classifies how a trapped run trapped (see RunResult).
type TrapClass = interp.TrapClass

// Trap classes.
const (
	// TrapCheck: a range check comparison failed at run time.
	TrapCheck = interp.TrapCheck
	// TrapStatic: a compile-time-detected violation trap executed.
	TrapStatic = interp.TrapStatic
)

// Scheme selects the check placement scheme of paper §3.3 / Table 2.
type Scheme int

// Placement schemes. Naive performs no optimization at all (the
// unoptimized reference the paper measures against); the others run the
// five-step optimizer with the corresponding insertion strategy.
const (
	Naive Scheme = iota
	NI           // redundancy elimination, no insertion
	CS           // check strengthening
	LNI          // latest-not-isolated placement
	SE           // safe-earliest placement
	LI           // preheader insertion of invariant checks
	LLS          // preheader insertion with loop-limit substitution
	ALL          // LLS followed by SE
	MCM          // Markstein-Cocke-Markstein restricted hoisting (paper §5)
)

var schemeNames = [...]string{"naive", "NI", "CS", "LNI", "SE", "LI", "LLS", "ALL", "MCM"}

func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

var coreSchemes = map[Scheme]core.Scheme{
	NI: core.NI, CS: core.CS, LNI: core.LNI, SE: core.SE,
	LI: core.LI, LLS: core.LLS, ALL: core.ALL, MCM: core.MCM,
}

// OptimizedSchemes lists the seven optimizing schemes in Table 2 order.
var OptimizedSchemes = []Scheme{NI, CS, LNI, SE, LI, LLS, ALL}

// CheckKind selects PRX (program expression) or INX (induction
// expression) check construction (paper §2.3).
type CheckKind int

// Check kinds.
const (
	PRX CheckKind = iota
	INX
)

func (k CheckKind) String() string {
	if k == INX {
		return "INX"
	}
	return "PRX"
}

// Implications selects which check implications the optimizer exploits
// (paper Table 3).
type Implications int

// Implication modes.
const (
	// ImplyFull uses all implications (the default).
	ImplyFull Implications = iota
	// ImplyNone disables implications between distinct checks (the
	// primed NI′/SE′ variants).
	ImplyNone
	// ImplyCross keeps only cross-family implications (the LLS′ variant).
	ImplyCross
)

var implModes = map[Implications]rangecheck.Mode{
	ImplyFull:  rangecheck.ImplyFull,
	ImplyNone:  rangecheck.ImplyNone,
	ImplyCross: rangecheck.ImplyCross,
}

func (m Implications) String() string { return implModes[m].String() }

// Options configure compilation.
type Options struct {
	// Filename is used in diagnostics (default "input.mf").
	Filename string
	// BoundsChecks inserts naive subscript range checks before
	// optimization. Without it the program compiles unchecked (the
	// paper's "instructions without range checking" baseline).
	BoundsChecks bool
	// Scheme selects the optimization scheme (default Naive: keep all
	// checks).
	Scheme Scheme
	// Kind selects PRX or INX check construction.
	Kind CheckKind
	// Implications selects the Table 3 implication ablation mode.
	Implications Implications
	// RotateLoops converts while loops into guarded repeat loops before
	// optimization, letting SE hoist out of them (paper §3.3's
	// loop-rotation remark).
	RotateLoops bool
}

// Program is a compiled (and possibly optimized) MF program.
type Program struct {
	IR *ir.Program
	// Opt reports what the optimizer did (nil for Naive scheme).
	Opt *OptReport
	// AST is the parsed source, for tooling.
	AST *ast.File
}

// OptReport summarizes one optimizer run. The counters satisfy
//
//	ChecksAfter = ChecksBefore + Inserted − EliminatedAvail
//	              − EliminatedCover − EliminatedConst − TrapsInserted
//
// whether or not any function degraded (degraded functions keep their
// naive bodies and contribute nothing to the counters).
type OptReport struct {
	ChecksBefore    int
	ChecksAfter     int
	Inserted        int
	EliminatedAvail int
	EliminatedCover int
	EliminatedConst int
	TrapsInserted   int
	Diagnostics     []string
	// Degraded names functions whose optimization failed and whose
	// naive (fully checked) bodies were kept; the rest of the program
	// is still optimized.
	Degraded []string
}

// RunResult is the outcome of executing a program.
type RunResult = interp.Result

// RunConfig bounds execution. Its Engine field selects the execution
// substrate (EngineTree or EngineVM); both produce identical
// observables.
type RunConfig = interp.Config

// Engine selects the execution substrate of a run. Both engines
// implement the same observable contract — identical dynamic
// instruction counts, check counts, outputs, traps, and resource
// budgets — so every table and oracle sweep is engine-independent.
type Engine = interp.Engine

// Execution engines.
const (
	// EngineTree is the reference tree-walking evaluator (the default).
	EngineTree = interp.EngineTree
	// EngineVM is the flat-register bytecode VM, the fast path.
	EngineVM = interp.EngineVM
	// EngineVMOpt is the bytecode VM running post-compile-optimized
	// bytecode (copy propagation, dead-store elimination,
	// superinstruction fusion, frame reuse). Same observables as the
	// other engines, fewer dispatches.
	EngineVMOpt = interp.EngineVMOpt
	// EngineVMRCE is the bytecode VM running guard/deopt bytecode:
	// preheader range guards cover whole families of proven-redundant
	// checks, guarded loops run a check-free fast copy, and a failed
	// guard deopts to the original fully-checked code. Same observables
	// as the other engines — eliminated checks are still counted.
	EngineVMRCE = interp.EngineVMRCE
	// EngineVMJit is the closure-compiled top tier: guard/deopt-rewritten,
	// optimized bytecode compiled into chained Go closures with
	// profile-guided superinstruction selection. Same observables, no
	// dispatch switch.
	EngineVMJit = interp.EngineVMJit
	// EngineTiered is the profile-guided tiering controller: runs start
	// on EngineVM and are promoted in the background through EngineVMOpt
	// and EngineVMRCE to EngineVMJit as hotness thresholds are crossed.
	// Promotion never changes an observable.
	EngineTiered = interp.EngineTiered
)

// ParseEngine maps a flag spelling ("tree", "vm", "vmopt", "vmrce",
// "vmjit", or "tiered") to an Engine.
func ParseEngine(s string) (Engine, error) { return interp.ParseEngine(s) }

// EngineNames lists every engine's flag spelling in Engine order.
func EngineNames() []string { return interp.EngineNames() }

// AllEngines lists every engine in registry order (tree first).
func AllEngines() []Engine { return interp.AllEngines() }

// Frontend holds the parse and semantic-analysis artifacts of one
// source text. The front half of compilation is independent of every
// backend option (bounds checking, scheme, kind, implications,
// rotation), so one Frontend can be reused across all optimizer
// configurations of the same program: each Compile call lowers fresh IR
// from the shared analysis.
//
// A Frontend is immutable after construction and safe for concurrent
// Compile calls; internal/evalpool memoizes Frontends keyed by source
// hash to share the parse/analyze cost across a job matrix.
type Frontend struct {
	file     *ast.File
	sem      *sem.Program
	filename string
}

// Analyze runs the parse and semantic-analysis stages once. An empty
// filename defaults to "input.mf". Like Compile, it never panics:
// internal invariant violations surface as stage-tagged *InternalError.
func Analyze(src, filename string) (fe *Frontend, err error) {
	stage := "parse"
	defer func() {
		if r := recover(); r != nil {
			fe = nil
			err = &InternalError{Stage: stage, Recovered: r, Stack: debug.Stack()}
		}
	}()

	if filename == "" {
		filename = "input.mf"
	}
	file, err := parser.Parse(filename, src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	stage = "analyze"
	semProg, err := sem.Analyze(file)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	return &Frontend{file: file, sem: semProg, filename: filename}, nil
}

// Filename returns the diagnostic filename the Frontend was built with.
func (fe *Frontend) Filename() string { return fe.filename }

// StageTimes reports the wall-clock cost of the backend stages of one
// Compile call (the paper's "Range" column isolates Optimize).
type StageTimes struct {
	Lower    time.Duration
	Optimize time.Duration
}

// Compile lowers and (per Options) optimizes the analyzed program. The
// Options' Filename field is ignored (the Frontend's filename already
// seeded all positions). Safe for concurrent use: every call builds
// fresh IR.
func (fe *Frontend) Compile(opts Options) (*Program, error) {
	return fe.CompileTimed(opts, nil)
}

// CompileTimed is Compile with per-stage wall-clock reporting: when st
// is non-nil it receives the lower and optimize durations.
func (fe *Frontend) CompileTimed(opts Options, st *StageTimes) (prog *Program, err error) {
	stage := "lower"
	defer func() {
		if r := recover(); r != nil {
			prog = nil
			err = &InternalError{Stage: stage, Recovered: r, Stack: debug.Stack()}
		}
	}()

	t0 := time.Now()
	irProg, err := irbuild.Build(fe.sem, irbuild.Options{BoundsChecks: opts.BoundsChecks})
	if st != nil {
		st.Lower = time.Since(t0)
	}
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	prog = &Program{IR: irProg, AST: fe.file}
	if opts.Scheme == Naive {
		return prog, nil
	}
	cs, ok := coreSchemes[opts.Scheme]
	if !ok {
		return nil, fmt.Errorf("unknown scheme %v", opts.Scheme)
	}
	stage = "optimize"
	t1 := time.Now()
	res, err := core.Optimize(irProg, core.Options{
		Scheme: cs,
		Kind:   core.CheckKind(opts.Kind),
		Mode:   implModes[opts.Implications],
		Rotate: opts.RotateLoops,
	})
	if st != nil {
		st.Optimize = time.Since(t1)
	}
	if err != nil {
		return nil, fmt.Errorf("optimize: %w", err)
	}
	prog.Opt = &OptReport{
		ChecksBefore:    res.ChecksBefore,
		ChecksAfter:     res.ChecksAfter,
		Inserted:        res.Inserted,
		EliminatedAvail: res.EliminatedAvail,
		EliminatedCover: res.EliminatedCover,
		EliminatedConst: res.EliminatedConst,
		TrapsInserted:   res.TrapsInserted,
		Diagnostics:     res.Diagnostics,
		Degraded:        res.Degraded,
	}
	return prog, nil
}

// Compile parses, analyzes, lowers, and (per Options) optimizes an MF
// program.
//
// Compile never panics: an internal invariant violation in any stage is
// recovered and returned as a stage-tagged *InternalError. When the
// optimizer fails on an individual function, that function falls back to
// its naive (fully checked) body, the failure is recorded in
// OptReport.Degraded, and compilation still succeeds.
func Compile(src string, opts Options) (*Program, error) {
	fe, err := Analyze(src, opts.Filename)
	if err != nil {
		return nil, err
	}
	return fe.Compile(opts)
}

// Run executes the program with default limits.
func (p *Program) Run() (RunResult, error) {
	return interp.Run(p.IR, interp.Config{})
}

// RunWith executes the program with explicit limits.
func (p *Program) RunWith(cfg RunConfig) (RunResult, error) {
	return interp.Run(p.IR, cfg)
}

// StaticChecks returns the number of range check statements currently in
// the program.
func (p *Program) StaticChecks() int { return p.IR.CountChecks() }

// DumpCIG renders the check implication graph of every function (paper
// §3.1, Figures 3–4): families as nodes, weighted cross-family
// implication edges discovered from affine copy relations.
func (p *Program) DumpCIG() string {
	out := ""
	for _, f := range p.IR.Funcs {
		g := core.BuildCIG(f, rangecheck.ImplyFull)
		if len(g.Registry.Families) == 0 {
			continue
		}
		out += fmt.Sprintf("CIG of %s:\n%s", f.Name, g.Dump())
	}
	return out
}

// Dump renders the IR of the whole program.
func (p *Program) Dump() string { return p.IR.Dump() }
